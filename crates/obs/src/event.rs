//! The typed event vocabulary of a governed run.

use mcdvfs_types::{FreqSetting, Joules, Seconds};

/// One observable occurrence during a governed run.
///
/// Events are `Copy` and carry the *exact* quantities the runner
/// accumulated into its report, so a complete event stream can be replayed
/// into bit-identical totals (see
/// [`RunLedger::replay`](crate::RunLedger::replay)). Emission order follows
/// accumulation order: per sample, first the optional region boundary, then
/// the optional tuning search, then the optional hardware transition, then
/// the sample execution itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A sample finished executing at a setting.
    SampleExecuted {
        /// Trace index of the sample.
        sample: usize,
        /// Setting the sample ran at.
        setting: FreqSetting,
        /// Execution time charged to the run's work total.
        time: Seconds,
        /// Energy charged to the run's work total.
        energy: Joules,
    },
    /// The governor performed a setting search before a sample.
    TuningSearch {
        /// Sample the search decided for.
        sample: usize,
        /// Number of candidate settings evaluated.
        settings_evaluated: usize,
        /// Search latency charged to the run's tuning total.
        latency: Seconds,
        /// Search energy charged to the run's tuning total.
        energy: Joules,
    },
    /// The hardware actually changed frequency (same-setting requests emit
    /// nothing).
    FrequencyTransition {
        /// Sample about to run at the new setting.
        sample: usize,
        /// Simulated time of the request, from the controller clock.
        at: Seconds,
        /// Setting before the change.
        from: FreqSetting,
        /// Setting after the change.
        to: FreqSetting,
        /// Hardware latency charged to the run's transition total.
        latency: Seconds,
        /// Hardware energy charged to the run's transition total.
        energy: Joules,
        /// Whether the CPU domain changed.
        cpu_changed: bool,
        /// Whether the memory domain changed.
        mem_changed: bool,
    },
    /// The governor opened a new control region (e.g. crossed a
    /// stable-region boundary or invalidated its previous plan). The first
    /// sample of a run is an implicit boundary whether or not the governor
    /// marks it.
    RegionBoundary {
        /// First sample of the new region.
        sample: usize,
    },
    /// The run's achieved inefficiency first exceeded the configured alert
    /// budget (emitted at most once per run).
    BudgetExceeded {
        /// Sample after which the budget was first exceeded.
        sample: usize,
        /// Achieved work inefficiency over samples `0..=sample`.
        inefficiency: f64,
        /// The alert budget that was crossed.
        budget: f64,
    },
}

impl Event {
    /// The trace sample the event is associated with.
    #[must_use]
    pub fn sample(&self) -> usize {
        match *self {
            Self::SampleExecuted { sample, .. }
            | Self::TuningSearch { sample, .. }
            | Self::FrequencyTransition { sample, .. }
            | Self::RegionBoundary { sample }
            | Self::BudgetExceeded { sample, .. } => sample,
        }
    }

    /// A short machine-readable name for the event kind (used by the
    /// exporters).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::SampleExecuted { .. } => "sample_executed",
            Self::TuningSearch { .. } => "tuning_search",
            Self::FrequencyTransition { .. } => "frequency_transition",
            Self::RegionBoundary { .. } => "region_boundary",
            Self::BudgetExceeded { .. } => "budget_exceeded",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_accessor_covers_every_variant() {
        let s = FreqSetting::from_mhz(500, 400);
        let events = [
            Event::SampleExecuted {
                sample: 1,
                setting: s,
                time: Seconds::ZERO,
                energy: Joules::ZERO,
            },
            Event::TuningSearch {
                sample: 2,
                settings_evaluated: 70,
                latency: Seconds::ZERO,
                energy: Joules::ZERO,
            },
            Event::FrequencyTransition {
                sample: 3,
                at: Seconds::ZERO,
                from: s,
                to: s,
                latency: Seconds::ZERO,
                energy: Joules::ZERO,
                cpu_changed: true,
                mem_changed: false,
            },
            Event::RegionBoundary { sample: 4 },
            Event::BudgetExceeded {
                sample: 5,
                inefficiency: 1.4,
                budget: 1.3,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.sample(), i + 1);
        }
    }

    #[test]
    fn kinds_are_distinct() {
        let s = FreqSetting::from_mhz(500, 400);
        let kinds = [
            Event::RegionBoundary { sample: 0 }.kind(),
            Event::SampleExecuted {
                sample: 0,
                setting: s,
                time: Seconds::ZERO,
                energy: Joules::ZERO,
            }
            .kind(),
            Event::BudgetExceeded {
                sample: 0,
                inefficiency: 1.0,
                budget: 1.0,
            }
            .kind(),
        ];
        assert_eq!(kinds.len(), {
            let mut k = kinds.to_vec();
            k.sort_unstable();
            k.dedup();
            k.len()
        });
    }
}
