//! Aggregation queries over a [`RunLedger`].

use crate::event::Event;
use crate::ledger::RunLedger;
use mcdvfs_types::{Error, Joules, Result, Seconds};

/// Totals reconstructed by replaying a ledger, field-for-field comparable
/// with the runner's report.
///
/// Replay sums each quantity in event order, which is the order the runner
/// accumulated it, so on a complete ledger every `f64` here is
/// *bit-identical* to its report counterpart — not merely close.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReplayTotals {
    /// Samples executed.
    pub samples: usize,
    /// Sum of per-sample execution times.
    pub work_time: Seconds,
    /// Sum of per-sample energies.
    pub work_energy: Joules,
    /// Number of tuning searches.
    pub searches: u64,
    /// Total search latency.
    pub tuning_time: Seconds,
    /// Total search energy.
    pub tuning_energy: Joules,
    /// Number of hardware transitions (either domain).
    pub transitions: u64,
    /// CPU-domain changes.
    pub cpu_transitions: u64,
    /// Memory-domain changes.
    pub mem_transitions: u64,
    /// Total hardware transition latency.
    pub transition_time: Seconds,
    /// Total hardware transition energy.
    pub transition_energy: Joules,
    /// Budget-exceeded alerts seen.
    pub budget_alerts: u64,
    /// Events the ledger evicted before replay — `0` on a complete
    /// ledger. Non-zero means every other field only covers the retained
    /// suffix of the run.
    pub dropped: u64,
}

/// Per-domain transition counts (the paper's Figure 8 quantities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DomainTransitionCounts {
    /// Joint transitions: a change to either domain counts once.
    pub joint: u64,
    /// CPU-domain changes.
    pub cpu: u64,
    /// Memory-domain changes.
    pub mem: u64,
}

/// Where the tuning overhead went.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SearchBreakdown {
    /// Number of searches performed.
    pub searches: u64,
    /// Total candidate settings evaluated across all searches.
    pub settings_evaluated: u64,
    /// Fewest settings one search evaluated (0 when no searches ran).
    pub min_evaluated: u64,
    /// Most settings one search evaluated.
    pub max_evaluated: u64,
    /// Total search latency.
    pub latency: Seconds,
    /// Total search energy.
    pub energy: Joules,
}

impl SearchBreakdown {
    /// Mean settings evaluated per search (0 when no searches ran).
    #[must_use]
    pub fn mean_evaluated(&self) -> f64 {
        if self.searches == 0 {
            0.0
        } else {
            self.settings_evaluated as f64 / self.searches as f64
        }
    }
}

/// A fixed-edge histogram over `f64` samples.
///
/// Bucket `i` counts values in `[edges[i], edges[i + 1])`; values below
/// the first edge or at/above the last are counted separately. Alongside
/// the buckets the histogram tracks the exact sum, minimum and maximum of
/// everything observed, so [`mean`](Self::mean) is exact and
/// [`percentile`](Self::percentile) estimates are clamped to the observed
/// range even when a bucket saturates.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    sum: f64,
    min_seen: f64,
    max_seen: f64,
}

impl Histogram {
    /// Creates an empty histogram over `edges` (ascending, at least two).
    ///
    /// # Panics
    ///
    /// Panics when fewer than two edges are given or they do not ascend
    /// strictly.
    #[must_use]
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(edges.len() >= 2, "a histogram needs at least one bucket");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must ascend strictly"
        );
        let buckets = edges.len() - 1;
        Self {
            edges,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            sum: 0.0,
            min_seen: f64::INFINITY,
            max_seen: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        self.sum += value;
        self.min_seen = self.min_seen.min(value);
        self.max_seen = self.max_seen.max(value);
        if value < self.edges[0] {
            self.underflow += 1;
        } else if value >= *self.edges.last().expect("at least two edges") {
            self.overflow += 1;
        } else {
            // partition_point: first edge strictly greater than value.
            let i = self.edges.partition_point(|&e| e <= value);
            self.counts[i - 1] += 1;
        }
    }

    /// The bucket edges.
    #[must_use]
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Per-bucket counts (`edges().len() - 1` entries).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the first edge.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the last edge.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including under/overflow.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Smallest observed value; `None` when empty.
    #[must_use]
    pub fn min_value(&self) -> Option<f64> {
        (self.total() > 0).then_some(self.min_seen)
    }

    /// Largest observed value; `None` when empty.
    #[must_use]
    pub fn max_value(&self) -> Option<f64> {
        (self.total() > 0).then_some(self.max_seen)
    }

    /// Exact mean of every observation; `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        let n = self.total();
        (n > 0).then(|| self.sum / n as f64)
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`), interpolated linearly
    /// within the containing bucket and clamped to the observed
    /// `[min, max]` range. Returns `None` when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let total = self.total();
        if total == 0 {
            return None;
        }
        // 1-based rank of the requested observation.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = self.underflow;
        if rank <= cum {
            return Some(self.min_seen);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 && rank <= cum + c {
                let lo = self.edges[i];
                let hi = self.edges[i + 1];
                let frac = (rank - cum) as f64 / c as f64;
                let v = lo + (hi - lo) * frac;
                return Some(v.clamp(self.min_seen, self.max_seen));
            }
            cum += c;
        }
        Some(self.max_seen)
    }

    /// Folds another histogram into this one: counts add bucket-wise and
    /// the exact sum/min/max combine. This is the join-time aggregation
    /// step for per-worker duration histograms.
    ///
    /// # Panics
    ///
    /// Panics when the two histograms were built over different edges.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.edges, other.edges,
            "cannot merge histograms with different edges"
        );
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.sum += other.sum;
        self.min_seen = self.min_seen.min(other.min_seen);
        self.max_seen = self.max_seen.max(other.max_seen);
    }
}

impl RunLedger {
    /// Replays the retained events into run totals, refusing to pretend a
    /// lossy ledger is the whole run.
    ///
    /// On a [complete](Self::is_complete) ledger the result matches the
    /// originating run report exactly, bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IncompleteLedger`] when the ring has evicted
    /// events — the totals of the surviving suffix are still available
    /// through [`replay_partial`](Self::replay_partial), which labels them
    /// as partial instead of silently under-counting.
    pub fn replay(&self) -> Result<ReplayTotals> {
        if !self.is_complete() {
            return Err(Error::IncompleteLedger {
                dropped: self.dropped(),
            });
        }
        Ok(self.replay_partial())
    }

    /// Replays every *retained* event into run totals, whether or not the
    /// ledger dropped events. [`ReplayTotals::dropped`] carries the
    /// eviction count so downstream consumers can see how much of the run
    /// the totals cover.
    #[must_use]
    pub fn replay_partial(&self) -> ReplayTotals {
        let mut t = ReplayTotals {
            dropped: self.dropped(),
            ..ReplayTotals::default()
        };
        for e in self.events() {
            match *e {
                Event::SampleExecuted { time, energy, .. } => {
                    t.samples += 1;
                    t.work_time += time;
                    t.work_energy += energy;
                }
                Event::TuningSearch {
                    latency, energy, ..
                } => {
                    t.searches += 1;
                    t.tuning_time += latency;
                    t.tuning_energy += energy;
                }
                Event::FrequencyTransition {
                    latency,
                    energy,
                    cpu_changed,
                    mem_changed,
                    ..
                } => {
                    t.transitions += 1;
                    t.cpu_transitions += u64::from(cpu_changed);
                    t.mem_transitions += u64::from(mem_changed);
                    t.transition_time += latency;
                    t.transition_energy += energy;
                }
                Event::RegionBoundary { .. } => {}
                Event::BudgetExceeded { .. } => t.budget_alerts += 1,
            }
        }
        t
    }

    /// Per-domain transition counts over the retained events.
    #[must_use]
    pub fn domain_transition_counts(&self) -> DomainTransitionCounts {
        let mut c = DomainTransitionCounts::default();
        for e in self.events() {
            if let Event::FrequencyTransition {
                cpu_changed,
                mem_changed,
                ..
            } = *e
            {
                c.joint += 1;
                c.cpu += u64::from(cpu_changed);
                c.mem += u64::from(mem_changed);
            }
        }
        c
    }

    /// Where the tuning overhead went, over the retained events.
    #[must_use]
    pub fn search_breakdown(&self) -> SearchBreakdown {
        let mut b = SearchBreakdown {
            min_evaluated: u64::MAX,
            ..SearchBreakdown::default()
        };
        for e in self.events() {
            if let Event::TuningSearch {
                settings_evaluated,
                latency,
                energy,
                ..
            } = *e
            {
                let n = settings_evaluated as u64;
                b.searches += 1;
                b.settings_evaluated += n;
                b.min_evaluated = b.min_evaluated.min(n);
                b.max_evaluated = b.max_evaluated.max(n);
                b.latency += latency;
                b.energy += energy;
            }
        }
        if b.searches == 0 {
            b.min_evaluated = 0;
        }
        b
    }

    /// Seconds between consecutive hardware transitions, in occurrence
    /// order (controller-clock timestamps).
    #[must_use]
    pub fn transition_interarrivals(&self) -> Vec<f64> {
        let times: Vec<f64> = self
            .events()
            .filter_map(|e| match *e {
                Event::FrequencyTransition { at, .. } => Some(at.value()),
                _ => None,
            })
            .collect();
        times.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Histogram of transition inter-arrival times over `edges` (seconds).
    ///
    /// # Panics
    ///
    /// Panics on invalid edges; see [`Histogram::new`].
    #[must_use]
    pub fn interarrival_histogram(&self, edges: Vec<f64>) -> Histogram {
        let mut h = Histogram::new(edges);
        for dt in self.transition_interarrivals() {
            h.add(dt);
        }
        h
    }

    /// Region lengths in samples, from the recorded boundaries.
    ///
    /// Sample 0 is an implicit boundary (governors that never search still
    /// have one region); the final region extends to the last executed
    /// sample. Returns an empty vector when no samples were recorded.
    #[must_use]
    pub fn region_lengths(&self) -> Vec<usize> {
        let n_samples = self
            .events()
            .filter(|e| matches!(e, Event::SampleExecuted { .. }))
            .count();
        if n_samples == 0 {
            return Vec::new();
        }
        let mut starts: Vec<usize> = self
            .events()
            .filter_map(|e| match *e {
                Event::RegionBoundary { sample } => Some(sample),
                _ => None,
            })
            .collect();
        if starts.first() != Some(&0) {
            starts.insert(0, 0);
        }
        starts
            .windows(2)
            .map(|w| w[1] - w[0])
            .chain(std::iter::once(
                n_samples - starts.last().copied().unwrap_or(0),
            ))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use mcdvfs_types::FreqSetting;

    fn sample(s: usize, ms: f64, mj: f64) -> Event {
        Event::SampleExecuted {
            sample: s,
            setting: FreqSetting::from_mhz(500, 400),
            time: Seconds::from_millis(ms),
            energy: Joules::from_millis(mj),
        }
    }

    fn transition(s: usize, at_ms: f64, cpu: bool, mem: bool) -> Event {
        Event::FrequencyTransition {
            sample: s,
            at: Seconds::from_millis(at_ms),
            from: FreqSetting::from_mhz(1000, 800),
            to: FreqSetting::from_mhz(500, 400),
            latency: Seconds::from_micros(30.0),
            energy: Joules::from_micros(10.0),
            cpu_changed: cpu,
            mem_changed: mem,
        }
    }

    #[test]
    fn replay_sums_each_category() {
        let mut l = RunLedger::unbounded();
        l.record(Event::RegionBoundary { sample: 0 });
        l.record(Event::TuningSearch {
            sample: 0,
            settings_evaluated: 70,
            latency: Seconds::from_micros(470.0),
            energy: Joules::from_micros(28.0),
        });
        l.record(transition(0, 0.0, true, true));
        l.record(sample(0, 1.0, 4.0));
        l.record(sample(1, 2.0, 5.0));
        let t = l.replay().expect("complete ledger replays");
        assert_eq!(t.dropped, 0);
        assert_eq!(t.samples, 2);
        assert_eq!(t.searches, 1);
        assert_eq!(t.transitions, 1);
        assert_eq!(t.cpu_transitions, 1);
        assert_eq!(t.mem_transitions, 1);
        assert_eq!(
            t.work_time,
            Seconds::from_millis(1.0) + Seconds::from_millis(2.0)
        );
        assert_eq!(
            t.work_energy,
            Joules::from_millis(4.0) + Joules::from_millis(5.0)
        );
        assert_eq!(t.budget_alerts, 0);
    }

    #[test]
    fn lossy_ledger_refuses_exact_replay_but_offers_partial() {
        let mut l = RunLedger::with_capacity(2);
        for s in 0..5 {
            l.record(sample(s, 1.0, 1.0));
        }
        match l.replay() {
            Err(Error::IncompleteLedger { dropped }) => assert_eq!(dropped, 3),
            other => panic!("expected IncompleteLedger, got {other:?}"),
        }
        let partial = l.replay_partial();
        assert_eq!(partial.dropped, 3);
        assert_eq!(partial.samples, 2, "only the retained suffix");
    }

    #[test]
    fn domain_counts_split_by_changed_flags() {
        let mut l = RunLedger::unbounded();
        l.record(transition(0, 0.0, true, false));
        l.record(transition(1, 1.0, false, true));
        l.record(transition(2, 2.0, true, true));
        let c = l.domain_transition_counts();
        assert_eq!(c.joint, 3);
        assert_eq!(c.cpu, 2);
        assert_eq!(c.mem, 2);
    }

    #[test]
    fn search_breakdown_tracks_extremes() {
        let mut l = RunLedger::unbounded();
        for n in [70usize, 4, 12] {
            l.record(Event::TuningSearch {
                sample: 0,
                settings_evaluated: n,
                latency: Seconds::from_micros(n as f64),
                energy: Joules::from_micros(n as f64 * 0.1),
            });
        }
        let b = l.search_breakdown();
        assert_eq!(b.searches, 3);
        assert_eq!(b.settings_evaluated, 86);
        assert_eq!(b.min_evaluated, 4);
        assert_eq!(b.max_evaluated, 70);
        assert!((b.mean_evaluated() - 86.0 / 3.0).abs() < 1e-12);
        let empty = RunLedger::unbounded().search_breakdown();
        assert_eq!(empty.min_evaluated, 0);
        assert_eq!(empty.mean_evaluated(), 0.0);
    }

    #[test]
    fn interarrivals_use_controller_timestamps() {
        let mut l = RunLedger::unbounded();
        l.record(transition(0, 0.0, true, true));
        l.record(transition(3, 5.0, true, true));
        l.record(transition(7, 6.0, true, true));
        let gaps = l.transition_interarrivals();
        assert_eq!(gaps.len(), 2);
        assert!((gaps[0] - 5e-3).abs() < 1e-12);
        assert!((gaps[1] - 1e-3).abs() < 1e-12);
        let h = l.interarrival_histogram(vec![0.0, 2e-3, 10e-3]);
        assert_eq!(h.counts(), &[1, 1]);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn histogram_buckets_and_flows() {
        let mut h = Histogram::new(vec![0.0, 1.0, 2.0]);
        h.add(-0.5); // underflow
        h.add(0.0); // first bucket (inclusive lower edge)
        h.add(0.99);
        h.add(1.0); // second bucket
        h.add(2.0); // overflow (exclusive upper edge)
        assert_eq!(h.counts(), &[2, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn histogram_rejects_unsorted_edges() {
        let _ = Histogram::new(vec![1.0, 1.0]);
    }

    #[test]
    fn empty_histogram_has_no_statistics() {
        let h = Histogram::new(vec![0.0, 1.0, 2.0]);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.percentile(1.0), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min_value(), None);
        assert_eq!(h.max_value(), None);
        assert_eq!(h.total(), 0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn percentile_rejects_out_of_range_quantiles() {
        let _ = Histogram::new(vec![0.0, 1.0]).percentile(1.5);
    }

    #[test]
    fn single_bucket_saturation_stays_within_observed_range() {
        // Every observation lands in one bucket: percentiles must
        // interpolate inside it and never escape [min, max].
        let mut h = Histogram::new(vec![0.0, 10.0]);
        for _ in 0..1000 {
            h.add(4.0);
        }
        h.add(4.5);
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            let p = h.percentile(q).unwrap();
            assert!((4.0..=4.5).contains(&p), "p{q} = {p} escaped [4.0, 4.5]");
        }
        assert_eq!(h.min_value(), Some(4.0));
        assert_eq!(h.max_value(), Some(4.5));
        let mean = h.mean().unwrap();
        assert!((mean - (4.0 * 1000.0 + 4.5) / 1001.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_cover_under_and_overflow() {
        let mut h = Histogram::new(vec![0.0, 1.0]);
        h.add(-5.0); // underflow
        h.add(0.5);
        h.add(9.0); // overflow
        assert_eq!(h.percentile(0.0), Some(-5.0), "p0 is the minimum");
        assert_eq!(h.percentile(1.0), Some(9.0), "p100 is the maximum");
        let mid = h.percentile(0.5).unwrap();
        assert!((0.0..=1.0).contains(&mid));
    }

    #[test]
    fn merge_combines_counts_and_exact_statistics() {
        let mut a = Histogram::new(vec![0.0, 1.0, 2.0]);
        let mut b = Histogram::new(vec![0.0, 1.0, 2.0]);
        a.add(0.5);
        a.add(1.5);
        b.add(0.25);
        b.add(2.5); // overflow
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 1]);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 4);
        assert_eq!(a.min_value(), Some(0.25));
        assert_eq!(a.max_value(), Some(2.5));
        assert!((a.mean().unwrap() - (0.5 + 1.5 + 0.25 + 2.5) / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different edges")]
    fn merge_rejects_mismatched_edges() {
        let mut a = Histogram::new(vec![0.0, 1.0]);
        a.merge(&Histogram::new(vec![0.0, 2.0]));
    }

    #[test]
    fn quantile_relative_error_is_bounded_by_the_bucket_ratio() {
        // The duration edges step by √10 per bucket. The estimator and
        // the exact rank-q sample always land in the same bucket (they
        // share the cumulative counts), so the estimate can miss by at
        // most one bucket width: |est − exact| ≤ exact · (√10 − 1).
        let bound = 10f64.sqrt() - 1.0;
        let mut rng = mcdvfs_types::SplitMix64::new(0xF11E_57A7);
        let mut h = Histogram::new(crate::metrics::duration_edges_ns());
        let mut samples = Vec::new();
        for _ in 0..10_000 {
            // Log-uniform over [1 µs, 100 ms): exercises many buckets.
            let v = 1e3 * 10f64.powf(rng.next_f64() * 5.0);
            h.add(v);
            samples.push(v);
        }
        samples.sort_by(f64::total_cmp);
        for q in [0.01, 0.10, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let est = h.percentile(q).unwrap();
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= bound,
                "q={q}: estimate {est} vs exact {exact} (rel err {rel:.3} > {bound:.3})"
            );
        }
        // The top extreme is exact: the estimate clamps to max_seen.
        assert_eq!(h.percentile(1.0), Some(*samples.last().unwrap()));
    }

    #[test]
    fn region_lengths_partition_the_samples() {
        let mut l = RunLedger::unbounded();
        l.record(Event::RegionBoundary { sample: 0 });
        for s in 0..10 {
            if s == 4 || s == 7 {
                l.record(Event::RegionBoundary { sample: s });
            }
            l.record(sample(s, 1.0, 1.0));
        }
        assert_eq!(l.region_lengths(), vec![4, 3, 3]);
    }

    #[test]
    fn region_lengths_add_implicit_start() {
        let mut l = RunLedger::unbounded();
        for s in 0..6 {
            l.record(sample(s, 1.0, 1.0));
        }
        assert_eq!(l.region_lengths(), vec![6], "one implicit region");
        assert!(RunLedger::unbounded().region_lengths().is_empty());
    }
}
