//! The pipeline profiler: one handle bundling a span buffer and the
//! join-time metric aggregate.
//!
//! Instrumented code (the sweep engine, the characterization fan-out, the
//! figure harness) takes a `&Profiler` and
//!
//! * opens phase [`Span`]s through [`Profiler::span`] /
//!   [`Profiler::span_under`];
//! * hands each worker thread its own [`MetricSet`] and folds the
//!   per-worker sets back in through [`Profiler::absorb`] after the scoped
//!   joins.
//!
//! A disabled profiler ([`Profiler::noop`]) reduces every hook to a
//! branch: spans are inert, `absorb` drops its argument, nothing
//! allocates. The equivalence suite pins that enabling a profiler changes
//! no byte of any analysis output.

use crate::metrics::MetricSet;
use crate::trace::{NullTraceSink, Span, SpanId, SpanRecord, TraceBuffer, TraceSink};
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

/// Wall time and span count of one node of the phase tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Dotted path of span names from the root ("sweep/points/worker").
    pub path: String,
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// Total wall time across all spans at this path, nanoseconds.
    pub wall_ns: u64,
    /// Number of spans aggregated into this node.
    pub count: u64,
}

/// A shareable tracing + metrics handle with recorder-style gating.
#[derive(Debug)]
pub struct Profiler {
    on: bool,
    buffer: TraceBuffer,
    metrics: Mutex<MetricSet>,
}

static NULL_SINK: NullTraceSink = NullTraceSink;

impl Profiler {
    /// An enabled profiler: spans and metrics are collected.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            on: true,
            buffer: TraceBuffer::new(),
            metrics: Mutex::new(MetricSet::new()),
        }
    }

    /// A disabled profiler: every hook is a no-op behind one branch.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            on: false,
            buffer: TraceBuffer::new(),
            metrics: Mutex::new(MetricSet::new()),
        }
    }

    /// The process-wide disabled profiler — what un-instrumented entry
    /// points pass down so instrumented internals need no `Option`.
    #[must_use]
    pub fn noop() -> &'static Profiler {
        static NOOP: OnceLock<Profiler> = OnceLock::new();
        NOOP.get_or_init(Profiler::disabled)
    }

    /// Whether spans and metrics are being collected.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// The span sink: the internal buffer when enabled, the null sink
    /// otherwise.
    #[must_use]
    pub fn sink(&self) -> &dyn TraceSink {
        if self.on {
            &self.buffer
        } else {
            &NULL_SINK
        }
    }

    /// Opens a root phase span.
    #[must_use]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span::root(self.sink(), name)
    }

    /// Opens a span under an explicit parent id (cross-thread parenting;
    /// see [`Span::under`]).
    #[must_use]
    pub fn span_under(&self, parent: SpanId, name: &'static str) -> Span<'_> {
        Span::under(self.sink(), parent, name)
    }

    /// Folds one worker's [`MetricSet`] into the aggregate. Called at
    /// join points only (once per worker), never inside worker loops, so
    /// the internal lock is uncontended by construction.
    pub fn absorb(&self, worker: MetricSet) {
        if self.on && !worker.is_empty() {
            self.metrics
                .lock()
                .expect("profiler metrics poisoned")
                .merge(&worker);
        }
    }

    /// Snapshot of the aggregated metrics.
    #[must_use]
    pub fn metrics(&self) -> MetricSet {
        self.metrics
            .lock()
            .expect("profiler metrics poisoned")
            .clone()
    }

    /// Snapshot of the completed spans, in completion order.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.buffer.spans()
    }

    /// Aggregates completed spans into a phase tree: spans sharing the
    /// same name-path fold into one [`PhaseTotal`]. Nodes come out in
    /// depth-first order, children after their parent, first-seen order
    /// among siblings.
    #[must_use]
    pub fn phase_totals(&self) -> Vec<PhaseTotal> {
        phase_totals_of(&self.spans())
    }

    /// Renders the phase tree flame-style (indentation = depth, bar =
    /// share of the longest root), followed by the aggregated metrics.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let totals = self.phase_totals();
        let mut out = String::new();
        let scale = totals
            .iter()
            .filter(|t| t.depth == 0)
            .map(|t| t.wall_ns)
            .max()
            .unwrap_or(0);
        for t in &totals {
            let name = t.path.rsplit('/').next().unwrap_or(&t.path);
            let label = format!("{:indent$}{name}", "", indent = t.depth * 2);
            let bar_len = if scale == 0 {
                0
            } else {
                ((t.wall_ns as f64 / scale as f64) * 30.0).round() as usize
            };
            let _ = writeln!(
                out,
                "  {label:<40} {:>12}  x{:<4} {}",
                fmt_ns(t.wall_ns),
                t.count,
                "#".repeat(bar_len),
            );
        }
        let metrics = self.metrics();
        if !metrics.is_empty() {
            out.push_str(&metrics.render());
        }
        out
    }
}

/// Phase aggregation over an explicit span list (exposed for tests and
/// for rendering traces that were shipped elsewhere).
#[must_use]
pub fn phase_totals_of(spans: &[SpanRecord]) -> Vec<PhaseTotal> {
    // Resolve each span's name-path by following parent links.
    let by_id: std::collections::HashMap<SpanId, &SpanRecord> =
        spans.iter().map(|s| (s.id, s)).collect();
    let path_of = |span: &SpanRecord| -> (String, usize) {
        let mut names = vec![span.name];
        let mut cur = span.parent;
        while cur != 0 {
            match by_id.get(&cur) {
                Some(p) => {
                    names.push(p.name);
                    cur = p.parent;
                }
                // Parent never closed (still open when the snapshot was
                // taken) — treat the chain as rooted here.
                None => break,
            }
        }
        names.reverse();
        (names.join("/"), names.len() - 1)
    };

    // Fold in depth-first-friendly order: sort keys by path, but keep
    // first-seen order among siblings by indexing on (path, first index).
    let mut order: Vec<String> = Vec::new();
    let mut totals: std::collections::HashMap<String, PhaseTotal> =
        std::collections::HashMap::new();
    for span in spans {
        let (path, depth) = path_of(span);
        if let Some(t) = totals.get_mut(&path) {
            t.wall_ns += span.duration_ns();
            t.count += 1;
        } else {
            order.push(path.clone());
            totals.insert(
                path.clone(),
                PhaseTotal {
                    path,
                    depth,
                    wall_ns: span.duration_ns(),
                    count: 1,
                },
            );
        }
    }
    // Children complete before parents, so first-seen order is bottom-up;
    // a stable sort by path prefix yields parent-before-child while
    // preserving sibling order within a parent.
    let index: std::collections::HashMap<&str, usize> = order
        .iter()
        .enumerate()
        .map(|(i, p)| (p.as_str(), i))
        .collect();
    let mut out: Vec<PhaseTotal> = order
        .iter()
        .map(|p| totals.get(p).expect("just inserted").clone())
        .collect();
    out.sort_by(|a, b| {
        let key = |t: &PhaseTotal| -> Vec<usize> {
            // Sort by the first-seen index of each ancestor path segment.
            let mut prefix = String::new();
            let mut k = Vec::new();
            for seg in t.path.split('/') {
                if !prefix.is_empty() {
                    prefix.push('/');
                }
                prefix.push_str(seg);
                k.push(index.get(prefix.as_str()).copied().unwrap_or(usize::MAX));
            }
            k
        };
        key(a).cmp(&key(b))
    });
    out
}

/// Render a nanosecond duration with a human-scale unit (`ns`/`µs`/`ms`/`s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_profiler_collects_nothing() {
        let p = Profiler::noop();
        assert!(!p.is_enabled());
        {
            let root = p.span("phase");
            assert!(!root.is_live());
            let mut m = MetricSet::new();
            m.incr("jobs", 5);
            p.absorb(m);
        }
        assert!(p.spans().is_empty());
        assert!(p.metrics().is_empty());
        assert!(p.phase_totals().is_empty());
    }

    #[test]
    fn enabled_profiler_builds_a_phase_tree() {
        let p = Profiler::enabled();
        {
            let root = p.span("sweep");
            {
                let _a = root.child("optimal");
            }
            {
                let points = root.child("points");
                let id = points.id();
                std::thread::scope(|s| {
                    for _ in 0..2 {
                        s.spawn(|| {
                            let _w = p.span_under(id, "worker");
                            let mut m = MetricSet::new();
                            m.incr("points.jobs", 3);
                            p.absorb(m);
                        });
                    }
                });
            }
        }
        let totals = p.phase_totals();
        let paths: Vec<&str> = totals.iter().map(|t| t.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "sweep",
                "sweep/optimal",
                "sweep/points",
                "sweep/points/worker"
            ]
        );
        let worker = totals.last().unwrap();
        assert_eq!(worker.count, 2, "two worker spans fold into one node");
        assert_eq!(worker.depth, 2);
        assert_eq!(p.metrics().counter("points.jobs"), 6);
        let text = p.render_summary();
        assert!(text.contains("sweep"));
        assert!(text.contains("worker"));
        assert!(text.contains("points.jobs"));
    }

    #[test]
    fn phase_totals_handle_orphan_spans() {
        // A child whose parent never closed roots the chain at itself.
        let spans = vec![SpanRecord {
            id: 7,
            parent: 3,
            name: "lonely",
            thread: 1,
            start_ns: 0,
            end_ns: 10,
        }];
        let totals = phase_totals_of(&spans);
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].path, "lonely");
        assert_eq!(totals[0].depth, 0);
        assert_eq!(totals[0].wall_ns, 10);
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert!(fmt_ns(1_500).contains("µs"));
        assert!(fmt_ns(1_500_000).contains("ms"));
        assert!(fmt_ns(1_500_000_000).contains(" s"));
    }
}
