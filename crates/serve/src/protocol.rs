//! The wire protocol: length-prefixed JSON-lines framing plus typed
//! request/reply bodies.
//!
//! # Framing
//!
//! Every message is one frame:
//!
//! ```text
//! <decimal byte length>\n
//! <compact JSON document of exactly that many bytes>\n
//! ```
//!
//! The length line bounds allocation before any payload byte is read
//! ([`MAX_FRAME_BYTES`]); the trailing newline keeps frames greppable on
//! the wire. Payloads are [`Json::render_compact`] documents, so every
//! `f64` crosses the wire in shortest-round-trip form and decodes to the
//! exact bits the server computed — replies are bit-identical to direct
//! [`SweepEngine`](mcdvfs_core::SweepEngine) calls.
//!
//! # Bodies
//!
//! Requests carry a `"query"` discriminator, replies a `"reply"`
//! discriminator. Budgets encode as a JSON number for
//! [`InefficiencyBudget::Bounded`] and the string `"inf"` for
//! [`InefficiencyBudget::Unconstrained`].

use mcdvfs_core::InefficiencyBudget;
use mcdvfs_types::Json;
use std::io::{self, BufRead, Write};

/// Upper bound on one frame's payload size, enforced before allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Writes one frame: decimal length line, payload, newline.
///
/// The frame is assembled into one buffer and issued as a single write:
/// three separate small writes would interleave with Nagle's algorithm
/// and the peer's delayed ACK into tens of milliseconds of stall per
/// frame on an otherwise idle connection.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME_BYTES`].
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds cap", payload.len()),
        ));
    }
    let mut frame = Vec::with_capacity(payload.len() + 16);
    frame.extend_from_slice(payload.len().to_string().as_bytes());
    frame.push(b'\n');
    frame.extend_from_slice(payload.as_bytes());
    frame.push(b'\n');
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one frame, blocking; `Ok(None)` on clean end-of-stream before
/// any frame byte.
///
/// # Errors
///
/// Propagates I/O errors; rejects malformed length lines, lengths over
/// [`MAX_FRAME_BYTES`], truncated payloads, and missing frame
/// terminators.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let len: usize = header
        .trim()
        .parse()
        .map_err(|_| bad_frame(format!("invalid frame length {header:?}")))?;
    if len > MAX_FRAME_BYTES {
        return Err(bad_frame(format!("frame of {len} bytes exceeds cap")));
    }
    let mut body = vec![0u8; len + 1];
    r.read_exact(&mut body).map_err(|e| match e.kind() {
        io::ErrorKind::UnexpectedEof => bad_frame("truncated frame".to_string()),
        _ => e,
    })?;
    if body.pop() != Some(b'\n') {
        return Err(bad_frame("frame missing terminator".to_string()));
    }
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| bad_frame("frame is not UTF-8".to_string()))
}

fn bad_frame(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// A query the server answers.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Per-sample optimal settings under an inefficiency budget.
    OptimalSetting {
        /// The inefficiency budget to optimize under.
        budget: InefficiencyBudget,
    },
    /// Per-sample performance-equivalent clusters.
    Cluster {
        /// The inefficiency budget anchoring each cluster's optimal.
        budget: InefficiencyBudget,
        /// Cluster slowdown threshold (e.g. `0.05` for 5%).
        threshold: f64,
    },
    /// Maximal runs of samples sharing a cluster member.
    StableRegions {
        /// The inefficiency budget anchoring the clusters.
        budget: InefficiencyBudget,
        /// Cluster slowdown threshold the regions are built from.
        threshold: f64,
    },
    /// Replay the trace under a governed run and report its overheads.
    GovernedReplay {
        /// Overhead model: `"ideal"` (no overheads) or `"paper"`.
        governor: String,
        /// The inefficiency budget the oracle plan optimizes under.
        budget: InefficiencyBudget,
    },
    /// Replay the trace under an online policy over a scenario's context
    /// stream and report its oracle-gap scorecard.
    PolicyReplay {
        /// Shipped policy name (`deadline`, `energy_budget`, `reactive`).
        policy: String,
        /// The inefficiency budget the energy envelope derives from.
        budget: InefficiencyBudget,
        /// Shipped scenario name whose context stream drives the policy.
        scenario: String,
    },
    /// Server metric snapshot.
    Stats,
    /// Liveness probe and characterization identity.
    Health,
    /// Windowed telemetry series plus histogram summaries.
    Telemetry,
    /// Recent flight records from the request-level flight recorder.
    TraceDump {
        /// Maximum records to return, newest last.
        limit: usize,
        /// Restrict to the slow-request log (flights over the server's
        /// slow threshold).
        slow_only: bool,
    },
}

impl Request {
    /// The wire discriminator, also used as the metric label.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Request::OptimalSetting { .. } => "optimal_setting",
            Request::Cluster { .. } => "cluster",
            Request::StableRegions { .. } => "stable_regions",
            Request::GovernedReplay { .. } => "governed_replay",
            Request::PolicyReplay { .. } => "policy_replay",
            Request::Stats => "stats",
            Request::Health => "health",
            Request::Telemetry => "telemetry",
            Request::TraceDump { .. } => "trace_dump",
        }
    }

    /// Encodes to the compact wire form, addressed to the server's
    /// default tenant.
    #[must_use]
    pub fn encode(&self) -> String {
        self.encode_for(None)
    }

    /// Encodes to the compact wire form, addressed to `workload`'s
    /// engine shard (`None` = the default tenant).
    #[must_use]
    pub fn encode_for(&self, workload: Option<&str>) -> String {
        let mut doc = self.to_json();
        if let (Some(name), Json::Obj(members)) = (workload, &mut doc) {
            members.push(("workload".to_string(), Json::Str(name.to_string())));
        }
        doc.render_compact()
    }

    fn to_json(&self) -> Json {
        let mut members = vec![("query".to_string(), Json::Str(self.kind().to_string()))];
        match self {
            Request::OptimalSetting { budget } => {
                members.push(("budget".to_string(), budget_to_json(*budget)));
            }
            Request::Cluster { budget, threshold }
            | Request::StableRegions { budget, threshold } => {
                members.push(("budget".to_string(), budget_to_json(*budget)));
                members.push(("threshold".to_string(), Json::Num(*threshold)));
            }
            Request::GovernedReplay { governor, budget } => {
                members.push(("governor".to_string(), Json::Str(governor.clone())));
                members.push(("budget".to_string(), budget_to_json(*budget)));
            }
            Request::PolicyReplay {
                policy,
                budget,
                scenario,
            } => {
                members.push(("policy".to_string(), Json::Str(policy.clone())));
                members.push(("budget".to_string(), budget_to_json(*budget)));
                members.push(("scenario".to_string(), Json::Str(scenario.clone())));
            }
            Request::TraceDump { limit, slow_only } => {
                members.push(("limit".to_string(), num(*limit as u64)));
                members.push(("slow_only".to_string(), Json::Bool(*slow_only)));
            }
            Request::Stats | Request::Health | Request::Telemetry => {}
        }
        Json::Obj(members)
    }

    /// Decodes a request payload, ignoring any tenant address.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax or shape problem.
    pub fn decode(payload: &str) -> Result<Self, String> {
        let doc = Json::parse(payload)?;
        Self::from_doc(&doc)
    }

    /// Decodes a request payload together with its optional `workload`
    /// tenant address — the server-side entry point.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax or shape problem,
    /// including a non-string `workload` member.
    pub fn decode_envelope(payload: &str) -> Result<(Self, Option<String>), String> {
        let doc = Json::parse(payload)?;
        let workload = match doc.get("workload") {
            None => None,
            Some(value) => Some(
                value
                    .as_str()
                    .ok_or("request 'workload' must be a string")?
                    .to_string(),
            ),
        };
        Ok((Self::from_doc(&doc)?, workload))
    }

    fn from_doc(doc: &Json) -> Result<Self, String> {
        let query = doc
            .get("query")
            .and_then(Json::as_str)
            .ok_or("request missing string 'query'")?;
        let budget = || budget_from_json(doc.get("budget").ok_or("request missing 'budget'")?);
        let threshold = || {
            doc.get("threshold")
                .and_then(Json::as_f64)
                .ok_or_else(|| "request missing number 'threshold'".to_string())
        };
        match query {
            "optimal_setting" => Ok(Request::OptimalSetting { budget: budget()? }),
            "cluster" => Ok(Request::Cluster {
                budget: budget()?,
                threshold: threshold()?,
            }),
            "stable_regions" => Ok(Request::StableRegions {
                budget: budget()?,
                threshold: threshold()?,
            }),
            "governed_replay" => Ok(Request::GovernedReplay {
                governor: doc
                    .get("governor")
                    .and_then(Json::as_str)
                    .ok_or("request missing string 'governor'")?
                    .to_string(),
                budget: budget()?,
            }),
            "policy_replay" => Ok(Request::PolicyReplay {
                policy: doc
                    .get("policy")
                    .and_then(Json::as_str)
                    .ok_or("request missing string 'policy'")?
                    .to_string(),
                budget: budget()?,
                scenario: doc
                    .get("scenario")
                    .and_then(Json::as_str)
                    .ok_or("request missing string 'scenario'")?
                    .to_string(),
            }),
            "stats" => Ok(Request::Stats),
            "health" => Ok(Request::Health),
            "telemetry" => Ok(Request::Telemetry),
            "trace_dump" => Ok(Request::TraceDump {
                limit: doc
                    .get("limit")
                    .and_then(Json::as_f64)
                    .map_or(32, |n| n as usize),
                slow_only: matches!(doc.get("slow_only"), Some(Json::Bool(true))),
            }),
            other => Err(format!("unknown query {other:?}")),
        }
    }
}

fn budget_to_json(budget: InefficiencyBudget) -> Json {
    match budget.bound() {
        Some(b) => Json::Num(b),
        None => Json::Str("inf".to_string()),
    }
}

fn budget_from_json(value: &Json) -> Result<InefficiencyBudget, String> {
    match value {
        Json::Str(s) if s == "inf" => Ok(InefficiencyBudget::Unconstrained),
        Json::Num(n) => InefficiencyBudget::bounded(*n).map_err(|e| e.to_string()),
        other => Err(format!("invalid budget {other:?}")),
    }
}

/// One per-sample optimal choice on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireChoice {
    /// Sample index within the trace.
    pub sample: usize,
    /// Flat grid index of the chosen setting.
    pub index: usize,
    /// Chosen CPU frequency in MHz.
    pub cpu_mhz: u32,
    /// Chosen memory frequency in MHz.
    pub mem_mhz: u32,
    /// Sample execution time at the chosen setting, seconds.
    pub time_s: f64,
    /// Sample energy at the chosen setting, joules.
    pub energy_j: f64,
    /// Sample inefficiency at the chosen setting.
    pub inefficiency: f64,
}

/// One per-sample performance cluster on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireCluster {
    /// Sample index within the trace.
    pub sample: usize,
    /// Flat grid index of the anchoring optimal setting.
    pub optimal_index: usize,
    /// Member setting indices, ascending.
    pub members: Vec<usize>,
    /// Member CPU frequency range in MHz, `(lo, hi)`.
    pub cpu_mhz: (u32, u32),
    /// Member memory frequency range in MHz, `(lo, hi)`.
    pub mem_mhz: (u32, u32),
}

/// One stable region on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRegion {
    /// First sample of the region (inclusive).
    pub start: usize,
    /// One past the last sample (exclusive).
    pub end: usize,
    /// Flat grid index of the representative setting.
    pub chosen_index: usize,
    /// Representative CPU frequency in MHz.
    pub cpu_mhz: u32,
    /// Representative memory frequency in MHz.
    pub mem_mhz: u32,
    /// All settings common to every sample in the region, ascending.
    pub available: Vec<usize>,
}

/// A governed-run report summary on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireReport {
    /// Governor name as the runner reported it.
    pub governor: String,
    /// Sum of per-sample execution times, seconds.
    pub work_time_s: f64,
    /// Sum of per-sample energies, joules.
    pub work_energy_j: f64,
    /// Total search latency charged, seconds.
    pub tuning_time_s: f64,
    /// Total search energy charged, joules.
    pub tuning_energy_j: f64,
    /// Total hardware transition latency charged, seconds.
    pub transition_time_s: f64,
    /// Total hardware transition energy charged, joules.
    pub transition_energy_j: f64,
    /// Joint frequency transitions performed.
    pub transitions: u64,
    /// CPU-domain changes.
    pub cpu_transitions: u64,
    /// Memory-domain changes.
    pub mem_transitions: u64,
    /// Tuning events that performed a search.
    pub searches: u64,
    /// Per-sample minimum-energy total, joules.
    pub total_emin_j: f64,
}

/// The oracle-gap scorecard a `PolicyReplay` query returns.
#[derive(Debug, Clone, PartialEq)]
pub struct WirePolicyReport {
    /// Shipped policy name the replay ran.
    pub policy: String,
    /// Shipped scenario whose context stream drove the policy.
    pub scenario: String,
    /// Policy decisions the engine made (one per interval).
    pub decisions: u64,
    /// Intervals whose execution time exceeded their deadline.
    pub deadline_misses: u64,
    /// Intervals where no setting fit the remaining energy envelope.
    pub budget_exhaustions: u64,
    /// Total energy over the per-sample minimum (≥ 1).
    pub energy_vs_emin: f64,
    /// Total energy over the ideal oracle's at the same budget.
    pub energy_vs_oracle: f64,
    /// Overhead-adjusted runtime over the ideal oracle's.
    pub time_vs_oracle: f64,
    /// Full governed-run report of the policy replay.
    pub report: WireReport,
}

/// Policy-engine counters inside [`WireStats`] and [`WireTelemetry`]
/// replies, aggregated over every shard's `policy_replay` computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WirePolicyCounters {
    /// Policy decisions made across all replays.
    pub decisions: u64,
    /// Hardware transitions those decisions caused.
    pub transitions: u64,
    /// Intervals that missed their deadline.
    pub deadline_misses: u64,
    /// Intervals where no setting fit the energy envelope.
    pub budget_exhaustions: u64,
}

/// Snapshot-store counters inside [`WireStats`] and [`WireTelemetry`]
/// replies: how often lazy shard builds warm-started from a persisted
/// characterization instead of recomputing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStoreCounters {
    /// Shard builds satisfied from a snapshot.
    pub hits: u64,
    /// Warm-start attempts that fell back to characterization (absent,
    /// corrupt, or mismatched snapshots all count here).
    pub misses: u64,
    /// Snapshot bytes read off disk for the hits.
    pub bytes_read: u64,
}

/// One live engine shard's metrics inside a [`WireStats`] reply.
#[derive(Debug, Clone, PartialEq)]
pub struct WireShard {
    /// Tenant (workload) name the shard serves.
    pub workload: String,
    /// Characterization fingerprint, 16 hex digits.
    pub fingerprint: String,
    /// Requests routed to this shard since it was built.
    pub requests: u64,
    /// Replies this shard served from its cache.
    pub cache_hits: u64,
    /// Replies this shard computed on a cache miss.
    pub cache_misses: u64,
    /// Jobs currently waiting in this shard's bounded queue.
    pub queue_depth: u64,
    /// `true` for the default tenant, which is never evicted.
    pub pinned: bool,
}

/// The server metric snapshot a `Stats` query returns.
#[derive(Debug, Clone, PartialEq)]
pub struct WireStats {
    /// Requests decoded since startup (all kinds).
    pub requests: u64,
    /// Responses served from the cache.
    pub cache_hits: u64,
    /// Responses computed on a cache miss.
    pub cache_misses: u64,
    /// Requests shed with an `Overloaded` reply.
    pub overloaded: u64,
    /// Undecodable or over-long frames received.
    pub protocol_errors: u64,
    /// Deepest queue occupancy observed across all shards.
    pub queue_depth_max: u64,
    /// Engine shards currently resident.
    pub engines: u64,
    /// Shards evicted (and left to lazily rebuild) since startup.
    pub evictions: u64,
    /// Per-shard metrics, sorted by workload name.
    pub shards: Vec<WireShard>,
    /// Aggregated policy-engine counters across all shards.
    pub policy: WirePolicyCounters,
    /// Snapshot-store warm-start counters.
    pub store: WireStoreCounters,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Compute requests currently queued or running (live gauge, not a
    /// lifetime counter).
    pub requests_in_flight: u64,
    /// Full human-readable metric rendering.
    pub rendered: String,
}

/// Summary of one named latency histogram inside a telemetry reply.
#[derive(Debug, Clone, PartialEq)]
pub struct WireHistogram {
    /// Metric name (or shard workload name for per-shard summaries).
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Exact mean in nanoseconds.
    pub mean_ns: f64,
    /// Estimated median in nanoseconds.
    pub p50_ns: f64,
    /// Estimated 95th percentile in nanoseconds.
    pub p95_ns: f64,
    /// Largest observation in nanoseconds.
    pub max_ns: f64,
}

/// One 1-second telemetry window on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireWindow {
    /// Whole seconds since the server's telemetry epoch.
    pub second: u64,
    /// Requests observed in the window.
    pub requests: u64,
    /// Successful replies.
    pub ok: u64,
    /// Error replies and deadline expiries.
    pub errors: u64,
    /// Backpressure rejections.
    pub shed: u64,
    /// Queue-depth high-water mark during the window.
    pub queue_depth_max: u64,
    /// Median reply latency in nanoseconds (`0` with no samples).
    pub p50_ns: f64,
    /// 95th-percentile reply latency in nanoseconds.
    pub p95_ns: f64,
    /// Slowest reply in nanoseconds.
    pub max_ns: f64,
}

/// The windowed-series + histogram-summary reply to a `Telemetry` query.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTelemetry {
    /// Whether the flight recorder / window ring are collecting. When
    /// `false` the windows and flight counters are empty but histogram
    /// summaries (always-on request metrics) still render.
    pub enabled: bool,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Populated 1-second windows, oldest first.
    pub windows: Vec<WireWindow>,
    /// Summaries of every merged metric histogram, sorted by name.
    pub histograms: Vec<WireHistogram>,
    /// Per-shard compute-latency summaries (`name` is the workload).
    pub shard_compute: Vec<WireHistogram>,
    /// Aggregated policy-engine counters across all shards.
    pub policy: WirePolicyCounters,
    /// Snapshot-store warm-start counters.
    pub store: WireStoreCounters,
    /// Flight records committed since startup.
    pub flight_recorded: u64,
    /// Flight records evicted from the bounded ring.
    pub flight_dropped: u64,
    /// Flights slower than the slow threshold.
    pub flight_slow: u64,
    /// The slow-log threshold in nanoseconds.
    pub slow_threshold_ns: u64,
}

/// One stamped stage inside a [`WireTrace`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireStage {
    /// Stage name (`accepted`, `frame_complete`, ... `write_flushed`).
    pub stage: String,
    /// Nanoseconds since the server's telemetry epoch.
    pub t_ns: u64,
}

/// One request flight record on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTrace {
    /// Recorder-unique id.
    pub id: u64,
    /// Request kind label.
    pub kind: String,
    /// Owning tenant's fingerprint, 16 hex digits (all zeros for
    /// global requests).
    pub fingerprint: String,
    /// Flight outcome (`ok`, `cache_hit`, `error`, `shed`,
    /// `timed_out`).
    pub outcome: String,
    /// End-to-end nanoseconds (last stamp minus first).
    pub total_ns: u64,
    /// Stamped stages in pipeline order.
    pub stages: Vec<WireStage>,
}

/// The liveness/identity reply to a `Health` query.
#[derive(Debug, Clone, PartialEq)]
pub struct WireHealth {
    /// Always `"ok"` from a live server.
    pub status: String,
    /// Workload name of the served characterization.
    pub workload: String,
    /// Sample count of the served characterization.
    pub samples: usize,
    /// Setting count of the served characterization.
    pub settings: usize,
    /// Characterization fingerprint, 16 hex digits.
    pub fingerprint: String,
    /// Worker threads answering compute queries.
    pub workers: usize,
}

/// A reply the server sends.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::OptimalSetting`].
    OptimalSetting(Vec<WireChoice>),
    /// Answer to [`Request::Cluster`].
    Cluster(Vec<WireCluster>),
    /// Answer to [`Request::StableRegions`].
    StableRegions(Vec<WireRegion>),
    /// Answer to [`Request::GovernedReplay`].
    GovernedReplay(WireReport),
    /// Answer to [`Request::PolicyReplay`].
    PolicyReplay(WirePolicyReport),
    /// Answer to [`Request::Stats`].
    Stats(WireStats),
    /// Answer to [`Request::Health`].
    Health(WireHealth),
    /// Answer to [`Request::Telemetry`].
    Telemetry(WireTelemetry),
    /// Answer to [`Request::TraceDump`].
    TraceDump(Vec<WireTrace>),
    /// The bounded queue was full; the request was shed, not queued.
    Overloaded,
    /// The request could not be decoded or computed.
    Error(String),
}

impl Response {
    /// The wire discriminator.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Response::OptimalSetting(_) => "optimal_setting",
            Response::Cluster(_) => "cluster",
            Response::StableRegions(_) => "stable_regions",
            Response::GovernedReplay(_) => "governed_replay",
            Response::PolicyReplay(_) => "policy_replay",
            Response::Stats(_) => "stats",
            Response::Health(_) => "health",
            Response::Telemetry(_) => "telemetry",
            Response::TraceDump(_) => "trace_dump",
            Response::Overloaded => "overloaded",
            Response::Error(_) => "error",
        }
    }

    /// Encodes to the compact wire form.
    #[must_use]
    pub fn encode(&self) -> String {
        self.to_json().render_compact()
    }

    fn to_json(&self) -> Json {
        let tag = ("reply".to_string(), Json::Str(self.kind().to_string()));
        match self {
            Response::OptimalSetting(choices) => Json::Obj(vec![
                tag,
                (
                    "choices".to_string(),
                    Json::Arr(choices.iter().map(choice_to_json).collect()),
                ),
            ]),
            Response::Cluster(clusters) => Json::Obj(vec![
                tag,
                (
                    "clusters".to_string(),
                    Json::Arr(clusters.iter().map(cluster_to_json).collect()),
                ),
            ]),
            Response::StableRegions(regions) => Json::Obj(vec![
                tag,
                (
                    "regions".to_string(),
                    Json::Arr(regions.iter().map(region_to_json).collect()),
                ),
            ]),
            Response::GovernedReplay(report) => {
                Json::Obj(vec![tag, ("report".to_string(), report_to_json(report))])
            }
            Response::PolicyReplay(p) => Json::Obj(vec![
                tag,
                ("policy".to_string(), Json::Str(p.policy.clone())),
                ("scenario".to_string(), Json::Str(p.scenario.clone())),
                ("decisions".to_string(), num(p.decisions)),
                ("deadline_misses".to_string(), num(p.deadline_misses)),
                ("budget_exhaustions".to_string(), num(p.budget_exhaustions)),
                ("energy_vs_emin".to_string(), Json::Num(p.energy_vs_emin)),
                (
                    "energy_vs_oracle".to_string(),
                    Json::Num(p.energy_vs_oracle),
                ),
                ("time_vs_oracle".to_string(), Json::Num(p.time_vs_oracle)),
                ("report".to_string(), report_to_json(&p.report)),
            ]),
            Response::Stats(stats) => Json::Obj(vec![
                tag,
                ("requests".to_string(), num(stats.requests)),
                ("cache_hits".to_string(), num(stats.cache_hits)),
                ("cache_misses".to_string(), num(stats.cache_misses)),
                ("overloaded".to_string(), num(stats.overloaded)),
                ("protocol_errors".to_string(), num(stats.protocol_errors)),
                ("queue_depth_max".to_string(), num(stats.queue_depth_max)),
                ("engines".to_string(), num(stats.engines)),
                ("evictions".to_string(), num(stats.evictions)),
                (
                    "shards".to_string(),
                    Json::Arr(stats.shards.iter().map(shard_to_json).collect()),
                ),
                ("policy".to_string(), policy_counters_to_json(&stats.policy)),
                ("store".to_string(), store_counters_to_json(&stats.store)),
                ("uptime_ms".to_string(), num(stats.uptime_ms)),
                (
                    "requests_in_flight".to_string(),
                    num(stats.requests_in_flight),
                ),
                ("rendered".to_string(), Json::Str(stats.rendered.clone())),
            ]),
            Response::Health(health) => Json::Obj(vec![
                tag,
                ("status".to_string(), Json::Str(health.status.clone())),
                ("workload".to_string(), Json::Str(health.workload.clone())),
                ("samples".to_string(), num(health.samples as u64)),
                ("settings".to_string(), num(health.settings as u64)),
                (
                    "fingerprint".to_string(),
                    Json::Str(health.fingerprint.clone()),
                ),
                ("workers".to_string(), num(health.workers as u64)),
            ]),
            Response::Telemetry(t) => Json::Obj(vec![
                tag,
                ("enabled".to_string(), Json::Bool(t.enabled)),
                ("uptime_ms".to_string(), num(t.uptime_ms)),
                (
                    "windows".to_string(),
                    Json::Arr(t.windows.iter().map(window_to_json).collect()),
                ),
                (
                    "histograms".to_string(),
                    Json::Arr(t.histograms.iter().map(histogram_to_json).collect()),
                ),
                (
                    "shard_compute".to_string(),
                    Json::Arr(t.shard_compute.iter().map(histogram_to_json).collect()),
                ),
                ("policy".to_string(), policy_counters_to_json(&t.policy)),
                ("store".to_string(), store_counters_to_json(&t.store)),
                ("flight_recorded".to_string(), num(t.flight_recorded)),
                ("flight_dropped".to_string(), num(t.flight_dropped)),
                ("flight_slow".to_string(), num(t.flight_slow)),
                ("slow_threshold_ns".to_string(), num(t.slow_threshold_ns)),
            ]),
            Response::TraceDump(records) => Json::Obj(vec![
                tag,
                (
                    "records".to_string(),
                    Json::Arr(records.iter().map(trace_to_json).collect()),
                ),
            ]),
            Response::Overloaded => Json::Obj(vec![tag]),
            Response::Error(message) => Json::Obj(vec![
                tag,
                ("message".to_string(), Json::Str(message.clone())),
            ]),
        }
    }

    /// Decodes a reply payload.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax or shape problem.
    pub fn decode(payload: &str) -> Result<Self, String> {
        let doc = Json::parse(payload)?;
        let reply = doc
            .get("reply")
            .and_then(Json::as_str)
            .ok_or("reply missing string 'reply'")?;
        match reply {
            "optimal_setting" => Ok(Response::OptimalSetting(arr_of(
                &doc,
                "choices",
                choice_from_json,
            )?)),
            "cluster" => Ok(Response::Cluster(arr_of(
                &doc,
                "clusters",
                cluster_from_json,
            )?)),
            "stable_regions" => Ok(Response::StableRegions(arr_of(
                &doc,
                "regions",
                region_from_json,
            )?)),
            "governed_replay" => Ok(Response::GovernedReplay(report_from_json(
                doc.get("report").ok_or("reply missing 'report'")?,
            )?)),
            "policy_replay" => Ok(Response::PolicyReplay(WirePolicyReport {
                policy: get_str(&doc, "policy")?,
                scenario: get_str(&doc, "scenario")?,
                decisions: get_u64(&doc, "decisions")?,
                deadline_misses: get_u64(&doc, "deadline_misses")?,
                budget_exhaustions: get_u64(&doc, "budget_exhaustions")?,
                energy_vs_emin: get_f64(&doc, "energy_vs_emin")?,
                energy_vs_oracle: get_f64(&doc, "energy_vs_oracle")?,
                time_vs_oracle: get_f64(&doc, "time_vs_oracle")?,
                report: report_from_json(doc.get("report").ok_or("reply missing 'report'")?)?,
            })),
            "stats" => Ok(Response::Stats(WireStats {
                requests: get_u64(&doc, "requests")?,
                cache_hits: get_u64(&doc, "cache_hits")?,
                cache_misses: get_u64(&doc, "cache_misses")?,
                overloaded: get_u64(&doc, "overloaded")?,
                protocol_errors: get_u64(&doc, "protocol_errors")?,
                queue_depth_max: get_u64(&doc, "queue_depth_max")?,
                engines: get_u64(&doc, "engines")?,
                evictions: get_u64(&doc, "evictions")?,
                shards: arr_of(&doc, "shards", shard_from_json)?,
                policy: policy_counters_from_json(&doc)?,
                store: store_counters_from_json(&doc)?,
                uptime_ms: get_u64(&doc, "uptime_ms")?,
                requests_in_flight: get_u64(&doc, "requests_in_flight")?,
                rendered: get_str(&doc, "rendered")?,
            })),
            "health" => Ok(Response::Health(WireHealth {
                status: get_str(&doc, "status")?,
                workload: get_str(&doc, "workload")?,
                samples: get_u64(&doc, "samples")? as usize,
                settings: get_u64(&doc, "settings")? as usize,
                fingerprint: get_str(&doc, "fingerprint")?,
                workers: get_u64(&doc, "workers")? as usize,
            })),
            "telemetry" => Ok(Response::Telemetry(WireTelemetry {
                enabled: matches!(doc.get("enabled"), Some(Json::Bool(true))),
                uptime_ms: get_u64(&doc, "uptime_ms")?,
                windows: arr_of(&doc, "windows", window_from_json)?,
                histograms: arr_of(&doc, "histograms", histogram_from_json)?,
                shard_compute: arr_of(&doc, "shard_compute", histogram_from_json)?,
                policy: policy_counters_from_json(&doc)?,
                store: store_counters_from_json(&doc)?,
                flight_recorded: get_u64(&doc, "flight_recorded")?,
                flight_dropped: get_u64(&doc, "flight_dropped")?,
                flight_slow: get_u64(&doc, "flight_slow")?,
                slow_threshold_ns: get_u64(&doc, "slow_threshold_ns")?,
            })),
            "trace_dump" => Ok(Response::TraceDump(arr_of(
                &doc,
                "records",
                trace_from_json,
            )?)),
            "overloaded" => Ok(Response::Overloaded),
            "error" => Ok(Response::Error(get_str(&doc, "message")?)),
            other => Err(format!("unknown reply {other:?}")),
        }
    }
}

fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

fn get_f64(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number '{key}'"))
}

fn get_u64(doc: &Json, key: &str) -> Result<u64, String> {
    get_f64(doc, key).map(|v| v as u64)
}

fn get_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string '{key}'"))
}

fn get_indices(doc: &Json, key: &str) -> Result<Vec<usize>, String> {
    doc.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array '{key}'"))?
        .iter()
        .map(|v| {
            v.as_f64()
                .map(|n| n as usize)
                .ok_or_else(|| format!("non-numeric entry in '{key}'"))
        })
        .collect()
}

fn arr_of<T>(
    doc: &Json,
    key: &str,
    decode: impl Fn(&Json) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    doc.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("reply missing array '{key}'"))?
        .iter()
        .map(decode)
        .collect()
}

fn choice_to_json(c: &WireChoice) -> Json {
    Json::Obj(vec![
        ("sample".to_string(), num(c.sample as u64)),
        ("index".to_string(), num(c.index as u64)),
        ("cpu_mhz".to_string(), num(u64::from(c.cpu_mhz))),
        ("mem_mhz".to_string(), num(u64::from(c.mem_mhz))),
        ("time_s".to_string(), Json::Num(c.time_s)),
        ("energy_j".to_string(), Json::Num(c.energy_j)),
        ("inefficiency".to_string(), Json::Num(c.inefficiency)),
    ])
}

fn choice_from_json(doc: &Json) -> Result<WireChoice, String> {
    Ok(WireChoice {
        sample: get_u64(doc, "sample")? as usize,
        index: get_u64(doc, "index")? as usize,
        cpu_mhz: get_u64(doc, "cpu_mhz")? as u32,
        mem_mhz: get_u64(doc, "mem_mhz")? as u32,
        time_s: get_f64(doc, "time_s")?,
        energy_j: get_f64(doc, "energy_j")?,
        inefficiency: get_f64(doc, "inefficiency")?,
    })
}

fn cluster_to_json(c: &WireCluster) -> Json {
    Json::Obj(vec![
        ("sample".to_string(), num(c.sample as u64)),
        ("optimal_index".to_string(), num(c.optimal_index as u64)),
        (
            "members".to_string(),
            Json::Arr(c.members.iter().map(|&i| num(i as u64)).collect()),
        ),
        (
            "cpu_mhz".to_string(),
            Json::Arr(vec![
                num(u64::from(c.cpu_mhz.0)),
                num(u64::from(c.cpu_mhz.1)),
            ]),
        ),
        (
            "mem_mhz".to_string(),
            Json::Arr(vec![
                num(u64::from(c.mem_mhz.0)),
                num(u64::from(c.mem_mhz.1)),
            ]),
        ),
    ])
}

fn cluster_from_json(doc: &Json) -> Result<WireCluster, String> {
    let range = |key: &str| -> Result<(u32, u32), String> {
        let pair = get_indices(doc, key)?;
        match pair.as_slice() {
            [lo, hi] => Ok((*lo as u32, *hi as u32)),
            _ => Err(format!("'{key}' is not a [lo, hi] pair")),
        }
    };
    Ok(WireCluster {
        sample: get_u64(doc, "sample")? as usize,
        optimal_index: get_u64(doc, "optimal_index")? as usize,
        members: get_indices(doc, "members")?,
        cpu_mhz: range("cpu_mhz")?,
        mem_mhz: range("mem_mhz")?,
    })
}

fn region_to_json(r: &WireRegion) -> Json {
    Json::Obj(vec![
        ("start".to_string(), num(r.start as u64)),
        ("end".to_string(), num(r.end as u64)),
        ("chosen_index".to_string(), num(r.chosen_index as u64)),
        ("cpu_mhz".to_string(), num(u64::from(r.cpu_mhz))),
        ("mem_mhz".to_string(), num(u64::from(r.mem_mhz))),
        (
            "available".to_string(),
            Json::Arr(r.available.iter().map(|&i| num(i as u64)).collect()),
        ),
    ])
}

fn region_from_json(doc: &Json) -> Result<WireRegion, String> {
    Ok(WireRegion {
        start: get_u64(doc, "start")? as usize,
        end: get_u64(doc, "end")? as usize,
        chosen_index: get_u64(doc, "chosen_index")? as usize,
        cpu_mhz: get_u64(doc, "cpu_mhz")? as u32,
        mem_mhz: get_u64(doc, "mem_mhz")? as u32,
        available: get_indices(doc, "available")?,
    })
}

fn policy_counters_to_json(p: &WirePolicyCounters) -> Json {
    Json::Obj(vec![
        ("decisions".to_string(), num(p.decisions)),
        ("transitions".to_string(), num(p.transitions)),
        ("deadline_misses".to_string(), num(p.deadline_misses)),
        ("budget_exhaustions".to_string(), num(p.budget_exhaustions)),
    ])
}

fn policy_counters_from_json(doc: &Json) -> Result<WirePolicyCounters, String> {
    let p = doc.get("policy").ok_or("reply missing 'policy'")?;
    Ok(WirePolicyCounters {
        decisions: get_u64(p, "decisions")?,
        transitions: get_u64(p, "transitions")?,
        deadline_misses: get_u64(p, "deadline_misses")?,
        budget_exhaustions: get_u64(p, "budget_exhaustions")?,
    })
}

fn store_counters_to_json(s: &WireStoreCounters) -> Json {
    Json::Obj(vec![
        ("hits".to_string(), num(s.hits)),
        ("misses".to_string(), num(s.misses)),
        ("bytes_read".to_string(), num(s.bytes_read)),
    ])
}

fn store_counters_from_json(doc: &Json) -> Result<WireStoreCounters, String> {
    let s = doc.get("store").ok_or("reply missing 'store'")?;
    Ok(WireStoreCounters {
        hits: get_u64(s, "hits")?,
        misses: get_u64(s, "misses")?,
        bytes_read: get_u64(s, "bytes_read")?,
    })
}

fn shard_to_json(s: &WireShard) -> Json {
    Json::Obj(vec![
        ("workload".to_string(), Json::Str(s.workload.clone())),
        ("fingerprint".to_string(), Json::Str(s.fingerprint.clone())),
        ("requests".to_string(), num(s.requests)),
        ("cache_hits".to_string(), num(s.cache_hits)),
        ("cache_misses".to_string(), num(s.cache_misses)),
        ("queue_depth".to_string(), num(s.queue_depth)),
        ("pinned".to_string(), Json::Bool(s.pinned)),
    ])
}

fn shard_from_json(doc: &Json) -> Result<WireShard, String> {
    Ok(WireShard {
        workload: get_str(doc, "workload")?,
        fingerprint: get_str(doc, "fingerprint")?,
        requests: get_u64(doc, "requests")?,
        cache_hits: get_u64(doc, "cache_hits")?,
        cache_misses: get_u64(doc, "cache_misses")?,
        queue_depth: get_u64(doc, "queue_depth")?,
        pinned: matches!(doc.get("pinned"), Some(Json::Bool(true))),
    })
}

fn histogram_to_json(h: &WireHistogram) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(h.name.clone())),
        ("count".to_string(), num(h.count)),
        ("mean_ns".to_string(), Json::Num(h.mean_ns)),
        ("p50_ns".to_string(), Json::Num(h.p50_ns)),
        ("p95_ns".to_string(), Json::Num(h.p95_ns)),
        ("max_ns".to_string(), Json::Num(h.max_ns)),
    ])
}

fn histogram_from_json(doc: &Json) -> Result<WireHistogram, String> {
    Ok(WireHistogram {
        name: get_str(doc, "name")?,
        count: get_u64(doc, "count")?,
        mean_ns: get_f64(doc, "mean_ns")?,
        p50_ns: get_f64(doc, "p50_ns")?,
        p95_ns: get_f64(doc, "p95_ns")?,
        max_ns: get_f64(doc, "max_ns")?,
    })
}

fn window_to_json(w: &WireWindow) -> Json {
    Json::Obj(vec![
        ("second".to_string(), num(w.second)),
        ("requests".to_string(), num(w.requests)),
        ("ok".to_string(), num(w.ok)),
        ("errors".to_string(), num(w.errors)),
        ("shed".to_string(), num(w.shed)),
        ("queue_depth_max".to_string(), num(w.queue_depth_max)),
        ("p50_ns".to_string(), Json::Num(w.p50_ns)),
        ("p95_ns".to_string(), Json::Num(w.p95_ns)),
        ("max_ns".to_string(), Json::Num(w.max_ns)),
    ])
}

fn window_from_json(doc: &Json) -> Result<WireWindow, String> {
    Ok(WireWindow {
        second: get_u64(doc, "second")?,
        requests: get_u64(doc, "requests")?,
        ok: get_u64(doc, "ok")?,
        errors: get_u64(doc, "errors")?,
        shed: get_u64(doc, "shed")?,
        queue_depth_max: get_u64(doc, "queue_depth_max")?,
        p50_ns: get_f64(doc, "p50_ns")?,
        p95_ns: get_f64(doc, "p95_ns")?,
        max_ns: get_f64(doc, "max_ns")?,
    })
}

fn trace_to_json(t: &WireTrace) -> Json {
    Json::Obj(vec![
        ("id".to_string(), num(t.id)),
        ("kind".to_string(), Json::Str(t.kind.clone())),
        ("fingerprint".to_string(), Json::Str(t.fingerprint.clone())),
        ("outcome".to_string(), Json::Str(t.outcome.clone())),
        ("total_ns".to_string(), num(t.total_ns)),
        (
            "stages".to_string(),
            Json::Arr(
                t.stages
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("stage".to_string(), Json::Str(s.stage.clone())),
                            ("t_ns".to_string(), num(s.t_ns)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn trace_from_json(doc: &Json) -> Result<WireTrace, String> {
    Ok(WireTrace {
        id: get_u64(doc, "id")?,
        kind: get_str(doc, "kind")?,
        fingerprint: get_str(doc, "fingerprint")?,
        outcome: get_str(doc, "outcome")?,
        total_ns: get_u64(doc, "total_ns")?,
        stages: arr_of(doc, "stages", |s| {
            Ok(WireStage {
                stage: get_str(s, "stage")?,
                t_ns: get_u64(s, "t_ns")?,
            })
        })?,
    })
}

fn report_to_json(r: &WireReport) -> Json {
    Json::Obj(vec![
        ("governor".to_string(), Json::Str(r.governor.clone())),
        ("work_time_s".to_string(), Json::Num(r.work_time_s)),
        ("work_energy_j".to_string(), Json::Num(r.work_energy_j)),
        ("tuning_time_s".to_string(), Json::Num(r.tuning_time_s)),
        ("tuning_energy_j".to_string(), Json::Num(r.tuning_energy_j)),
        (
            "transition_time_s".to_string(),
            Json::Num(r.transition_time_s),
        ),
        (
            "transition_energy_j".to_string(),
            Json::Num(r.transition_energy_j),
        ),
        ("transitions".to_string(), num(r.transitions)),
        ("cpu_transitions".to_string(), num(r.cpu_transitions)),
        ("mem_transitions".to_string(), num(r.mem_transitions)),
        ("searches".to_string(), num(r.searches)),
        ("total_emin_j".to_string(), Json::Num(r.total_emin_j)),
    ])
}

fn report_from_json(doc: &Json) -> Result<WireReport, String> {
    Ok(WireReport {
        governor: get_str(doc, "governor")?,
        work_time_s: get_f64(doc, "work_time_s")?,
        work_energy_j: get_f64(doc, "work_energy_j")?,
        tuning_time_s: get_f64(doc, "tuning_time_s")?,
        tuning_energy_j: get_f64(doc, "tuning_energy_j")?,
        transition_time_s: get_f64(doc, "transition_time_s")?,
        transition_energy_j: get_f64(doc, "transition_energy_j")?,
        transitions: get_u64(doc, "transitions")?,
        cpu_transitions: get_u64(doc, "cpu_transitions")?,
        mem_transitions: get_u64(doc, "mem_transitions")?,
        searches: get_u64(doc, "searches")?,
        total_emin_j: get_f64(doc, "total_emin_j")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, r#"{"query":"health"}"#).unwrap();
        write_frame(&mut wire, "").unwrap();
        let mut r = BufReader::new(wire.as_slice());
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some(r#"{"query":"health"}"#)
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn frames_reject_abuse() {
        for bad in ["x\n", "-3\nabc\n", "1048577\n", "5\nab\n"] {
            let mut r = BufReader::new(bad.as_bytes());
            assert!(read_frame(&mut r).is_err(), "{bad:?} should fail");
        }
        // Length honest but terminator missing.
        let mut r = BufReader::new(b"2\nabX".as_slice());
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::OptimalSetting {
                budget: InefficiencyBudget::bounded(1.3).unwrap(),
            },
            Request::Cluster {
                budget: InefficiencyBudget::Unconstrained,
                threshold: 0.05,
            },
            Request::StableRegions {
                budget: InefficiencyBudget::bounded(1.1).unwrap(),
                threshold: 0.01,
            },
            Request::GovernedReplay {
                governor: "paper".to_string(),
                budget: InefficiencyBudget::bounded(1.6).unwrap(),
            },
            Request::PolicyReplay {
                policy: "reactive".to_string(),
                budget: InefficiencyBudget::bounded(1.3).unwrap(),
                scenario: "load_burst".to_string(),
            },
            Request::Stats,
            Request::Health,
            Request::Telemetry,
            Request::TraceDump {
                limit: 16,
                slow_only: true,
            },
        ];
        for req in reqs {
            let decoded = Request::decode(&req.encode()).unwrap();
            assert_eq!(decoded, req);
        }
        // Omitted trace_dump knobs take defaults instead of erroring.
        assert_eq!(
            Request::decode(r#"{"query":"trace_dump"}"#).unwrap(),
            Request::TraceDump {
                limit: 32,
                slow_only: false,
            }
        );
    }

    #[test]
    fn responses_round_trip_bit_for_bit() {
        let resp = Response::OptimalSetting(vec![WireChoice {
            sample: 3,
            index: 41,
            cpu_mhz: 900,
            mem_mhz: 400,
            time_s: 1.0 / 3.0,
            energy_j: 0.1 + 0.2,
            inefficiency: 1.05,
        }]);
        let decoded = Response::decode(&resp.encode()).unwrap();
        let Response::OptimalSetting(choices) = &decoded else {
            panic!("wrong reply kind");
        };
        assert_eq!(choices[0].time_s.to_bits(), (1.0f64 / 3.0).to_bits());
        assert_eq!(choices[0].energy_j.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(decoded, resp);

        let others = [
            Response::Cluster(vec![WireCluster {
                sample: 0,
                optimal_index: 5,
                members: vec![3, 5, 9],
                cpu_mhz: (700, 1000),
                mem_mhz: (200, 800),
            }]),
            Response::StableRegions(vec![WireRegion {
                start: 0,
                end: 7,
                chosen_index: 12,
                cpu_mhz: 1000,
                mem_mhz: 600,
                available: vec![2, 12],
            }]),
            Response::GovernedReplay(WireReport {
                governor: "oracle-optimal(1.3)".to_string(),
                work_time_s: 2.5,
                work_energy_j: 1.25,
                tuning_time_s: 0.001,
                tuning_energy_j: 0.0005,
                transition_time_s: 0.002,
                transition_energy_j: 0.0001,
                transitions: 17,
                cpu_transitions: 11,
                mem_transitions: 9,
                searches: 30,
                total_emin_j: 1.1,
            }),
            Response::PolicyReplay(WirePolicyReport {
                policy: "reactive".to_string(),
                scenario: "load_burst".to_string(),
                decisions: 48,
                deadline_misses: 3,
                budget_exhaustions: 0,
                energy_vs_emin: 1.0 / 3.0 + 1.0,
                energy_vs_oracle: 0.1 + 0.2,
                time_vs_oracle: 1.25,
                report: WireReport {
                    governor: "policy-reactive@load_burst".to_string(),
                    work_time_s: 2.5,
                    work_energy_j: 1.25,
                    tuning_time_s: 0.001,
                    tuning_energy_j: 0.0005,
                    transition_time_s: 0.002,
                    transition_energy_j: 0.0001,
                    transitions: 15,
                    cpu_transitions: 15,
                    mem_transitions: 14,
                    searches: 16,
                    total_emin_j: 1.1,
                },
            }),
            Response::Stats(WireStats {
                requests: 100,
                cache_hits: 40,
                cache_misses: 60,
                overloaded: 2,
                protocol_errors: 1,
                queue_depth_max: 7,
                engines: 2,
                evictions: 3,
                shards: vec![
                    WireShard {
                        workload: "bzip2".to_string(),
                        fingerprint: "00000000deadbeef".to_string(),
                        requests: 31,
                        cache_hits: 11,
                        cache_misses: 20,
                        queue_depth: 1,
                        pinned: false,
                    },
                    WireShard {
                        workload: "gobmk".to_string(),
                        fingerprint: "0123456789abcdef".to_string(),
                        requests: 69,
                        cache_hits: 29,
                        cache_misses: 40,
                        queue_depth: 0,
                        pinned: true,
                    },
                ],
                policy: WirePolicyCounters {
                    decisions: 96,
                    transitions: 19,
                    deadline_misses: 4,
                    budget_exhaustions: 1,
                },
                store: WireStoreCounters {
                    hits: 1,
                    misses: 2,
                    bytes_read: 35_712,
                },
                uptime_ms: 120_500,
                requests_in_flight: 3,
                rendered: "counter requests.total 100\n".to_string(),
            }),
            Response::Health(WireHealth {
                status: "ok".to_string(),
                workload: "gobmk".to_string(),
                samples: 30,
                settings: 70,
                fingerprint: "0123456789abcdef".to_string(),
                workers: 4,
            }),
            Response::Telemetry(WireTelemetry {
                enabled: true,
                uptime_ms: 4_250,
                windows: vec![WireWindow {
                    second: 3,
                    requests: 120,
                    ok: 117,
                    errors: 1,
                    shed: 2,
                    queue_depth_max: 9,
                    p50_ns: 420_000.0,
                    p95_ns: 1.0 / 3.0 * 1e7,
                    max_ns: 9_900_000.0,
                }],
                histograms: vec![WireHistogram {
                    name: "latency.request_ns".to_string(),
                    count: 120,
                    mean_ns: 0.1 + 0.2,
                    p50_ns: 420_000.0,
                    p95_ns: 3_300_000.0,
                    max_ns: 9_900_000.0,
                }],
                shard_compute: vec![WireHistogram {
                    name: "gobmk".to_string(),
                    count: 40,
                    mean_ns: 250_000.0,
                    p50_ns: 200_000.0,
                    p95_ns: 800_000.0,
                    max_ns: 900_000.0,
                }],
                policy: WirePolicyCounters::default(),
                store: WireStoreCounters::default(),
                flight_recorded: 120,
                flight_dropped: 8,
                flight_slow: 2,
                slow_threshold_ns: 250_000_000,
            }),
            Response::TraceDump(vec![WireTrace {
                id: 17,
                kind: "optimal_setting".to_string(),
                fingerprint: "0123456789abcdef".to_string(),
                outcome: "ok".to_string(),
                total_ns: 930,
                stages: vec![
                    WireStage {
                        stage: "accepted".to_string(),
                        t_ns: 100,
                    },
                    WireStage {
                        stage: "write_flushed".to_string(),
                        t_ns: 1030,
                    },
                ],
            }]),
            Response::Overloaded,
            Response::Error("bad request".to_string()),
        ];
        for resp in others {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn workload_envelopes_round_trip_and_default_to_none() {
        let request = Request::Cluster {
            budget: InefficiencyBudget::bounded(1.2).unwrap(),
            threshold: 0.03,
        };
        // Addressed form carries the tenant; bare form does not.
        let addressed = request.encode_for(Some("bzip2"));
        assert!(addressed.contains(r#""workload":"bzip2""#));
        let (decoded, workload) = Request::decode_envelope(&addressed).unwrap();
        assert_eq!(decoded, request);
        assert_eq!(workload.as_deref(), Some("bzip2"));

        let bare = request.encode();
        assert!(!bare.contains("workload"));
        let (decoded, workload) = Request::decode_envelope(&bare).unwrap();
        assert_eq!(decoded, request);
        assert_eq!(workload, None);

        // Request::decode tolerates (and ignores) the address.
        assert_eq!(Request::decode(&addressed).unwrap(), request);

        // A non-string workload is a typed decode error, not a panic.
        assert!(Request::decode_envelope(r#"{"query":"health","workload":7}"#).is_err());
    }

    #[test]
    fn budgets_encode_bounded_and_unconstrained() {
        let bounded = Request::OptimalSetting {
            budget: InefficiencyBudget::bounded(1.3).unwrap(),
        };
        assert_eq!(
            bounded.encode(),
            r#"{"query":"optimal_setting","budget":1.3}"#
        );
        let unconstrained = Request::OptimalSetting {
            budget: InefficiencyBudget::Unconstrained,
        };
        assert_eq!(
            unconstrained.encode(),
            r#"{"query":"optimal_setting","budget":"inf"}"#
        );
    }
}
