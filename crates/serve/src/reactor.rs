//! The event-driven connection reactor.
//!
//! One thread owns every connection. The listener and all accepted
//! streams are nonblocking; each tick accepts until `WouldBlock`, drains
//! compute completions, then scans the connection slab — flushing write
//! buffers, enforcing idle/write/reply deadlines, reading whatever bytes
//! are available, and parsing frames out of each connection's
//! accumulator. Idle connections are slots in a `Vec`, not threads: ten
//! thousand silent sockets cost zero stacks and a slow-loris client is
//! reaped by the idle deadline it can no longer dodge by trickling
//! header bytes (the deadline is enforced from the tick, not from inside
//! a blocking read).
//!
//! Backpressure is structural: a connection may have at most one compute
//! request in flight, and while it does the reactor neither reads nor
//! parses more of its input — the kernel's TCP window does the rest.
//! Inline answers (health, stats, cache hits, typed errors, shed
//! replies) never leave the reactor thread. Compute replies flow back
//! over the completion channel tagged with a [`ConnToken`] whose
//! generation is bumped on slot reuse and on reply timeout, so a stale
//! completion can never answer the wrong client.
//!
//! When nothing is ready the loop blocks on the completion channel with
//! a millisecond timeout — a finished compute wakes it instantly, and
//! the timeout bounds how late it can notice new sockets or deadlines.

use crate::protocol::{Request, Response, WireHealth, WireStats, WireTelemetry, MAX_FRAME_BYTES};
use crate::server::{cache_key, ServerConfig};
use crate::shard::{try_dispatch, Completion, ConnToken, Dispatch, Job, ShardMap};
use crate::telemetry::{histogram_summary, wire_trace, TelemetryCtx};
use mcdvfs_obs::{count_edges, MetricSet, Outcome, Profiler, RequestTrace, Stage, WindowClass};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long an idle tick blocks on the completion channel.
const IDLE_WAIT: Duration = Duration::from_millis(1);

/// Hard ceiling on shutdown drain, independent of `reply_timeout`.
const MAX_DRAIN: Duration = Duration::from_secs(5);

/// Per-read scratch size; frames larger than this accumulate over ticks.
const READ_CHUNK: usize = 16 * 1024;

/// Everything the reactor and its helpers share read-only.
pub(crate) struct Ctx {
    pub map: Arc<ShardMap>,
    pub metrics: Arc<Mutex<MetricSet>>,
    pub profiler: Arc<Profiler>,
    pub tel: TelemetryCtx,
    pub config: ServerConfig,
}

impl Ctx {
    fn record(&self, f: impl FnOnce(&mut MetricSet)) {
        f(&mut self.metrics.lock().expect("reactor metrics poisoned"));
    }

    /// Reader-side metrics merged with every shard's worker slots.
    fn snapshot(&self) -> MetricSet {
        let mut merged = self
            .metrics
            .lock()
            .expect("reactor metrics poisoned")
            .clone();
        self.map.merge_metrics(&mut merged);
        merged
    }
}

/// One registered connection.
struct Conn {
    stream: TcpStream,
    /// Inbound bytes not yet parsed into a frame.
    buf: Vec<u8>,
    /// Outbound bytes not yet accepted by the socket.
    out: Vec<u8>,
    out_pos: usize,
    /// Identity generation for completion routing.
    gen: u64,
    /// Set while a compute request is queued or running; holds the
    /// request's arrival instant for the latency histogram.
    in_flight: Option<Instant>,
    /// When the first byte of the frame being accumulated arrived —
    /// the flight record's `accepted` stamp.
    frame_started: Option<Instant>,
    /// Flight records for replies sitting in `out`, committed once the
    /// write buffer fully drains (the `write_flushed` stamp).
    pending: Vec<RequestTrace>,
    last_byte: Instant,
    /// First instant a write returned `WouldBlock` with bytes pending.
    write_stall: Option<Instant>,
    /// Close once the write buffer drains.
    closing: bool,
    /// Peer sent EOF; finish what is parsed, then close.
    eof: bool,
    /// Slot is dead; the scan frees it at the end of the tick.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64) -> Self {
        Self {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            gen,
            in_flight: None,
            frame_started: None,
            pending: Vec::new(),
            last_byte: Instant::now(),
            write_stall: None,
            closing: false,
            eof: false,
            dead: false,
        }
    }

    /// Appends one framed reply to the write buffer.
    fn push_frame(&mut self, payload: &str) {
        self.out
            .extend_from_slice(payload.len().to_string().as_bytes());
        self.out.push(b'\n');
        self.out.extend_from_slice(payload.as_bytes());
        self.out.push(b'\n');
    }
}

/// Runs the poll loop until shutdown; returns after the drain completes.
pub(crate) fn run(
    listener: TcpListener,
    completions: Receiver<Completion>,
    ctx: Ctx,
    shutdown: Arc<AtomicBool>,
) {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut next_gen: u64 = 0;
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let tick_start = Instant::now();
        let mut did_work = false;
        let stopping = shutdown.load(Ordering::Relaxed);

        if stopping {
            drain_deadline
                .get_or_insert_with(|| Instant::now() + ctx.config.reply_timeout.min(MAX_DRAIN));
        } else {
            did_work |= accept_ready(&listener, &ctx, &mut conns, &mut free, &mut next_gen);
        }

        while let Ok(completion) = completions.try_recv() {
            deliver(&mut conns, &ctx, completion);
            did_work = true;
        }

        let scanned = conns.len();
        for (idx, slot) in conns.iter_mut().enumerate() {
            let Some(conn) = slot.as_mut() else {
                continue;
            };
            did_work |= service(conn, idx, &ctx, &mut next_gen);
            if stopping && !conn.dead && conn.in_flight.is_none() && conn.out_pos >= conn.out.len()
            {
                conn.dead = true;
            }
            if conn.dead {
                // A dying connection's replies may never fully flush;
                // commit their flight records without the final stamp.
                for trace in conn.pending.drain(..) {
                    ctx.tel.recorder.commit(trace);
                }
                *slot = None;
                free.push(idx);
            }
        }

        // Satellite of the O(slots) scan follow-on: make the tick's own
        // cost visible. Gated with telemetry so the off path stays
        // lock-free on idle ticks.
        if ctx.tel.recorder.is_enabled() {
            ctx.record(|m| {
                m.incr("reactor.ticks", 1);
                m.incr("reactor.slots_scanned", scanned as u64);
                m.observe("reactor.scan_slots", scanned as f64, count_edges);
                m.observe_duration_ns("reactor.tick_ns", tick_start.elapsed().as_nanos() as f64);
            });
        }

        if stopping {
            let drained = conns.iter().all(Option::is_none);
            let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
            if drained || expired {
                return;
            }
        }

        if !did_work {
            match completions.recv_timeout(IDLE_WAIT) {
                Ok(completion) => deliver(&mut conns, &ctx, completion),
                Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {}
            }
        }
    }
}

/// Accepts every connection the listener has ready.
fn accept_ready(
    listener: &TcpListener,
    ctx: &Ctx,
    conns: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    next_gen: &mut u64,
) -> bool {
    let mut accepted = false;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                // Replies are single small frames; never hold them for
                // Nagle coalescing.
                let _ = stream.set_nodelay(true);
                *next_gen += 1;
                let conn = Conn::new(stream, *next_gen);
                match free.pop() {
                    Some(idx) => conns[idx] = Some(conn),
                    None => conns.push(Some(conn)),
                }
                ctx.record(|m| m.incr("connections.accepted", 1));
                accepted = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    accepted
}

/// Routes one compute completion to its (still-matching) connection.
/// Stale completions (slot freed or generation bumped by a reply
/// timeout) still commit their flight record — marked timed out — so
/// the recorder sees every request the workers actually finished.
fn deliver(conns: &mut [Option<Conn>], ctx: &Ctx, completion: Completion) {
    let live = conns
        .get_mut(completion.conn.id)
        .and_then(Option::as_mut)
        .filter(|conn| conn.gen == completion.conn.gen);
    let Some(conn) = live else {
        if let Some(mut trace) = completion.trace {
            trace.outcome = Outcome::TimedOut;
            ctx.tel.recorder.commit(trace);
        }
        return;
    };
    let Some(started) = conn.in_flight.take() else {
        return;
    };
    conn.push_frame(&completion.reply);
    let latency_ns = started.elapsed().as_nanos() as f64;
    ctx.record(|m| {
        m.observe_duration_ns("latency.request_ns", latency_ns);
    });
    ctx.tel.in_flight_add(-1);
    ctx.tel
        .observe_window(window_class(completion.outcome), latency_ns);
    if let Some(trace) = completion.trace {
        conn.pending.push(trace);
    }
}

/// Maps a request outcome onto its windowed-telemetry class.
fn window_class(outcome: Outcome) -> WindowClass {
    match outcome {
        Outcome::Ok | Outcome::CacheHit => WindowClass::Ok,
        Outcome::Error | Outcome::TimedOut => WindowClass::Error,
        Outcome::Shed => WindowClass::Shed,
    }
}

/// One tick of one connection: flush, deadlines, read, parse, dispatch.
fn service(conn: &mut Conn, idx: usize, ctx: &Ctx, next_gen: &mut u64) -> bool {
    let mut did_work = flush(conn);
    commit_flushed(conn, ctx);
    if conn.dead {
        return did_work;
    }

    if let Some(stall) = conn.write_stall {
        if stall.elapsed() > ctx.config.write_timeout {
            conn.dead = true;
            return did_work;
        }
    }

    if let Some(started) = conn.in_flight {
        if started.elapsed() > ctx.config.reply_timeout {
            conn.in_flight = None;
            // Retire this identity so the late completion is dropped.
            *next_gen += 1;
            conn.gen = *next_gen;
            conn.push_frame(&Response::Error("compute timed out".to_string()).encode());
            let latency_ns = started.elapsed().as_nanos() as f64;
            ctx.record(|m| {
                m.observe_duration_ns("latency.request_ns", latency_ns);
            });
            ctx.tel.in_flight_add(-1);
            ctx.tel.observe_window(WindowClass::Error, latency_ns);
            did_work = true;
        }
    } else if conn.last_byte.elapsed() > ctx.config.idle_timeout {
        // Never sent a byte (or stalled mid-frame): reap silently.
        ctx.record(|m| m.incr("connections.idle_closed", 1));
        conn.dead = true;
        return did_work;
    }

    if !conn.closing && !conn.eof && conn.in_flight.is_none() {
        did_work |= fill(conn);
        if conn.dead {
            return did_work;
        }
    }

    while conn.in_flight.is_none() && !conn.closing && !conn.dead {
        match parse_frame(&conn.buf) {
            Ok(Some((payload, consumed))) => {
                // The frame is complete: its `accepted` stamp is when its
                // first byte arrived. Any leftover bytes in the buffer
                // belong to the *next* frame, whose first byte is already
                // here — restart the clock for it now.
                let accepted = conn.frame_started.take();
                conn.buf.drain(..consumed);
                conn.frame_started = (!conn.buf.is_empty()).then(Instant::now);
                handle_payload(conn, idx, &payload, ctx, accepted);
                did_work = true;
            }
            Ok(None) => {
                if conn.eof {
                    if conn.buf.is_empty() {
                        // Clean EOF between frames.
                        if conn.out_pos >= conn.out.len() {
                            conn.dead = true;
                        } else {
                            conn.closing = true;
                        }
                    } else {
                        ctx.record(|m| m.incr("protocol.errors", 1));
                        conn.push_frame(&Response::Error("truncated frame".to_string()).encode());
                        conn.closing = true;
                        did_work = true;
                    }
                }
                break;
            }
            Err(message) => {
                // Framing is broken; reply once and drop the connection.
                ctx.record(|m| m.incr("protocol.errors", 1));
                conn.push_frame(&Response::Error(message).encode());
                conn.closing = true;
                did_work = true;
            }
        }
    }

    did_work |= flush(conn);
    commit_flushed(conn, ctx);
    did_work
}

/// Commits pending flight records once the write buffer has fully
/// drained: that drain instant is every pending reply's
/// `write_flushed` stamp.
fn commit_flushed(conn: &mut Conn, ctx: &Ctx) {
    if conn.pending.is_empty() || conn.out_pos < conn.out.len() {
        return;
    }
    let flushed_ns = ctx.tel.recorder.now_ns();
    for mut trace in conn.pending.drain(..) {
        trace.stamp(Stage::WriteFlushed, flushed_ns);
        ctx.tel.recorder.commit(trace);
    }
}

/// Writes as much of the outbound buffer as the socket accepts.
fn flush(conn: &mut Conn) -> bool {
    let mut wrote = false;
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return wrote;
            }
            Ok(n) => {
                conn.out_pos += n;
                conn.write_stall = None;
                wrote = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                conn.write_stall.get_or_insert_with(Instant::now);
                return wrote;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return wrote;
            }
        }
    }
    if !conn.out.is_empty() {
        conn.out.clear();
        conn.out_pos = 0;
    }
    if conn.closing {
        conn.dead = true;
    }
    wrote
}

/// Reads everything the socket has ready into the frame accumulator.
fn fill(conn: &mut Conn) -> bool {
    let mut scratch = [0u8; READ_CHUNK];
    let mut read_any = false;
    loop {
        match conn.stream.read(&mut scratch) {
            Ok(0) => {
                conn.eof = true;
                return true;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&scratch[..n]);
                conn.last_byte = Instant::now();
                if conn.frame_started.is_none() {
                    conn.frame_started = Some(conn.last_byte);
                }
                read_any = true;
                // One in-flight request per connection bounds how much a
                // peer can usefully pipeline; stop slurping once we hold
                // a full max-size frame plus the next header.
                if conn.buf.len() > MAX_FRAME_BYTES + 64 {
                    return true;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return read_any,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return read_any;
            }
        }
    }
}

/// Tries to split one `<len>\n<payload>\n` frame off the accumulator.
/// `Ok(None)` means incomplete; `Err` is a fatal framing error.
fn parse_frame(buf: &[u8]) -> Result<Option<(String, usize)>, String> {
    let header_end = buf.iter().take(33).position(|&b| b == b'\n');
    let Some(header_end) = header_end else {
        if buf.len() >= 32 {
            return Err("oversized frame header".to_string());
        }
        return Ok(None);
    };
    if header_end > 31 {
        return Err("oversized frame header".to_string());
    }
    let header =
        std::str::from_utf8(&buf[..header_end]).map_err(|_| "frame header is not UTF-8")?;
    let len: usize = header
        .trim()
        .parse()
        .map_err(|_| "invalid frame length".to_string())?;
    if len > MAX_FRAME_BYTES {
        return Err("frame exceeds size cap".to_string());
    }
    let need = header_end + 1 + len + 1;
    if buf.len() < need {
        return Ok(None);
    }
    if buf[need - 1] != b'\n' {
        return Err("frame missing terminator".to_string());
    }
    let payload = String::from_utf8(buf[header_end + 1..need - 1].to_vec())
        .map_err(|_| "frame is not UTF-8")?;
    Ok(Some((payload, need)))
}

/// Decodes and answers one request. Cache hits, `Stats`, `Health`,
/// `Telemetry`, `TraceDump`, typed errors, and shed replies answer
/// inline; everything else dispatches to the owning shard and marks the
/// connection in flight. When the flight recorder is on, a
/// [`RequestTrace`] is born here and rides the same path the reply
/// takes.
fn handle_payload(
    conn: &mut Conn,
    idx: usize,
    payload: &str,
    ctx: &Ctx,
    accepted: Option<Instant>,
) {
    let started = Instant::now();
    let rec = &ctx.tel.recorder;
    let mut trace = if rec.is_enabled() {
        // Born before decode so even malformed requests leave a record;
        // the kind is corrected the moment decode succeeds.
        let mut t = rec.begin("invalid");
        if let Some(at) = accepted {
            t.stamp(Stage::Accepted, rec.ns_of(at));
        }
        t.stamp(Stage::FrameComplete, rec.ns_of(started));
        Some(t)
    } else {
        None
    };
    let p = &ctx.profiler;
    let decoded = {
        let _span = p.span("decode");
        Request::decode_envelope(payload)
    };
    let (request, workload) = match decoded {
        Ok(decoded) => decoded,
        Err(message) => {
            ctx.record(|m| m.incr("protocol.errors", 1));
            let reply = Response::Error(message).encode();
            reply_inline(conn, ctx, started, &reply, Outcome::Error, trace);
            return;
        }
    };
    if let Some(t) = trace.as_mut() {
        t.kind = request.kind();
        t.stamp(Stage::Decoded, rec.now_ns());
        let decode_ns = started.elapsed().as_nanos() as f64;
        ctx.record(|m| {
            m.observe_duration_ns(&format!("stage.{}.decode_ns", request.kind()), decode_ns);
        });
    }
    ctx.record(|m| {
        m.incr("requests.total", 1);
        m.incr(&format!("requests.{}", request.kind()), 1);
    });

    if matches!(request, Request::Stats) {
        // Global view: reader metrics, every shard's workers, the map.
        let snapshot = ctx.snapshot();
        let counter = |name: &str| snapshot.counter(name);
        let reply = Response::Stats(WireStats {
            requests: counter("requests.total"),
            cache_hits: counter("cache.hit"),
            cache_misses: counter("cache.miss"),
            overloaded: counter("overloaded"),
            protocol_errors: counter("protocol.errors"),
            queue_depth_max: snapshot.gauge("queue.depth_max").unwrap_or(0.0) as u64,
            engines: ctx.map.resident() as u64,
            evictions: ctx.map.evictions(),
            shards: ctx.map.wire_rows(),
            policy: ctx.map.policy_counters(),
            store: ctx.map.store_counters(),
            uptime_ms: ctx.tel.uptime_ms(),
            requests_in_flight: ctx.tel.in_flight.get(),
            rendered: snapshot.render(),
        })
        .encode();
        reply_inline(conn, ctx, started, &reply, Outcome::Ok, trace);
        return;
    }

    if matches!(request, Request::Telemetry) {
        let reply = Response::Telemetry(build_telemetry(ctx)).encode();
        reply_inline(conn, ctx, started, &reply, Outcome::Ok, trace);
        return;
    }

    if let Request::TraceDump { limit, slow_only } = request {
        let dump = rec
            .recent(limit, slow_only)
            .iter()
            .map(wire_trace)
            .collect();
        let reply = Response::TraceDump(dump).encode();
        reply_inline(conn, ctx, started, &reply, Outcome::Ok, trace);
        return;
    }

    let (core, job_tx) = match ctx.map.resolve(workload.as_deref()) {
        Ok(resolved) => resolved,
        Err(message) => {
            ctx.record(|m| m.incr("route.unknown_workload", 1));
            let reply = Response::Error(message).encode();
            reply_inline(conn, ctx, started, &reply, Outcome::Error, trace);
            return;
        }
    };
    core.requests
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    if let Some(t) = trace.as_mut() {
        t.fingerprint = core.fingerprint;
    }

    if matches!(request, Request::Health) {
        let data = core.engine.data();
        let reply = Response::Health(WireHealth {
            status: "ok".to_string(),
            workload: data.name().to_string(),
            samples: data.n_samples(),
            settings: data.n_settings(),
            fingerprint: format!("{:016x}", core.fingerprint),
            workers: ctx.config.workers.max(1),
        })
        .encode();
        reply_inline(conn, ctx, started, &reply, Outcome::Ok, trace);
        return;
    }

    // Every variant that falls through the inline paths above has a
    // cache key today; if dispatch and `cache_key` ever disagree (a new
    // request kind wired into one but not the other), a typed reply is
    // the right failure mode — not a reactor panic.
    let Some(key) = cache_key(core.fingerprint, &request) else {
        ctx.record(|m| m.incr("internal.errors", 1));
        let reply = Response::Error(format!(
            "internal error: no cache key for {:?} dispatch",
            request.kind()
        ))
        .encode();
        reply_inline(conn, ctx, started, &reply, Outcome::Error, trace);
        return;
    };
    if let Some(hit) = core.cache.get(&key) {
        core.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        ctx.record(|m| m.incr("cache.hit", 1));
        reply_inline(conn, ctx, started, &hit, Outcome::CacheHit, trace);
        return;
    }

    if let Some(t) = trace.as_mut() {
        t.stamp(Stage::Enqueued, rec.now_ns());
    }
    let job = Job {
        request,
        key,
        conn: ConnToken {
            id: idx,
            gen: conn.gen,
        },
        enqueued: started,
        trace,
    };
    match try_dispatch(&core, &job_tx, job) {
        (Dispatch::Queued, depth) => {
            ctx.record(|m| m.gauge_max("queue.depth_max", depth as f64));
            ctx.tel.in_flight_add(1);
            ctx.tel.observe_queue_depth(depth as u64);
            conn.in_flight = Some(started);
        }
        (Dispatch::Shed(job), _) => {
            ctx.record(|m| m.incr("overloaded", 1));
            reply_inline(
                conn,
                ctx,
                started,
                &Response::Overloaded.encode(),
                Outcome::Shed,
                job.trace,
            );
        }
        (Dispatch::Gone(job), _) => {
            let reply = Response::Error("server is shutting down".to_string()).encode();
            reply_inline(conn, ctx, started, &reply, Outcome::Error, job.trace);
        }
    }
}

/// Assembles the full telemetry reply on the reactor thread: merged
/// histogram summaries, the window ring, per-shard compute latency, and
/// the flight recorder's own accounting.
fn build_telemetry(ctx: &Ctx) -> WireTelemetry {
    let rec = &ctx.tel.recorder;
    let snapshot = ctx.snapshot();
    let histograms = snapshot
        .histogram_names()
        .map(|name| {
            let h = snapshot.histogram(name).expect("name came from the set");
            histogram_summary(name, h)
        })
        .collect();
    let windows = ctx
        .tel
        .windows
        .borrow()
        .snapshot()
        .iter()
        .map(|w| crate::protocol::WireWindow {
            second: w.second,
            requests: w.requests,
            ok: w.ok,
            errors: w.errors,
            shed: w.shed,
            queue_depth_max: w.queue_depth_max,
            p50_ns: w.p50_ns().unwrap_or(0.0),
            p95_ns: w.p95_ns().unwrap_or(0.0),
            max_ns: w.max_ns().unwrap_or(0.0),
        })
        .collect();
    let shard_compute = ctx
        .map
        .shard_metric_rows()
        .iter()
        .filter_map(|(name, set)| {
            set.histogram("latency.compute_ns")
                .map(|h| histogram_summary(name, h))
        })
        .collect();
    let counts = rec.counts();
    WireTelemetry {
        enabled: rec.is_enabled(),
        uptime_ms: ctx.tel.uptime_ms(),
        windows,
        histograms,
        shard_compute,
        policy: ctx.map.policy_counters(),
        store: ctx.map.store_counters(),
        flight_recorded: counts.recorded,
        flight_dropped: counts.dropped,
        flight_slow: counts.slow,
        // `u64::MAX` (the disabled sentinel) does not survive the f64
        // wire; report 0 when the recorder is off.
        slow_threshold_ns: if rec.is_enabled() {
            rec.slow_threshold_ns()
        } else {
            0
        },
    }
}

/// Queues a reactor-produced reply, records its request latency, counts
/// it into the current telemetry window, and parks its flight record
/// (stamped `encoded` now) until the write buffer drains.
fn reply_inline(
    conn: &mut Conn,
    ctx: &Ctx,
    started: Instant,
    payload: &str,
    outcome: Outcome,
    trace: Option<RequestTrace>,
) {
    conn.push_frame(payload);
    let latency_ns = started.elapsed().as_nanos() as f64;
    ctx.record(|m| {
        m.observe_duration_ns("latency.request_ns", latency_ns);
    });
    ctx.tel.observe_window(window_class(outcome), latency_ns);
    if let Some(mut t) = trace {
        t.outcome = outcome;
        t.stamp(Stage::Encoded, ctx.tel.recorder.now_ns());
        conn.pending.push(t);
    }
}

#[cfg(test)]
mod tests {
    use super::parse_frame;

    #[test]
    fn frames_split_incrementally_and_reject_bad_headers() {
        let frame = b"5\nhello\n";
        for cut in 0..frame.len() {
            assert!(
                parse_frame(&frame[..cut]).expect("prefix parses").is_none(),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        let (payload, consumed) = parse_frame(frame).unwrap().expect("complete frame");
        assert_eq!(payload, "hello");
        assert_eq!(consumed, frame.len());

        // Two frames back to back: the first parse consumes exactly one.
        let two = b"2\nhi\n3\nyou\n";
        let (first, consumed) = parse_frame(two).unwrap().expect("first frame");
        assert_eq!(first, "hi");
        let (second, rest) = parse_frame(&two[consumed..]).unwrap().expect("second");
        assert_eq!(second, "you");
        assert_eq!(consumed + rest, two.len());

        assert!(parse_frame(b"not a number\n").is_err());
        assert!(parse_frame(&[b'9'; 40]).is_err(), "header without newline");
        assert!(parse_frame(b"99999999999999999999\nx").is_err());
        assert!(parse_frame(b"3\nabcX").is_err(), "missing terminator");
    }
}
