//! A governed-query service layer over the `mcdvfs` analysis pipeline.
//!
//! The paper's tuning-overhead argument (§5) is about amortizing repeated
//! "best (CPU, mem) setting under inefficiency budget I" lookups; related
//! online multi-domain DVFS systems (SysScale, CoScale-style QoS
//! controllers) frame exactly that as a long-lived service answering
//! per-interval queries. This crate is that serving layer for the
//! reproduction: a std-only multi-threaded TCP server (no tokio/hyper —
//! the workspace builds offline) exposing the
//! [`SweepEngine`](mcdvfs_core::SweepEngine) as five queries over a
//! length-prefixed JSON wire protocol:
//!
//! * `OptimalSetting {budget}` — per-sample optimal settings,
//! * `Cluster {budget, threshold}` — performance-equivalent clusters,
//! * `StableRegions {budget, threshold}` — maximal stable runs,
//! * `GovernedReplay {governor, budget}` — overhead-charged replays,
//! * `PolicyReplay {policy, budget, scenario}` — online-policy replays
//!   over a scenario's context stream, scored against the ideal oracle,
//! * `Stats` / `Health` — observability and liveness,
//! * `Telemetry` / `TraceDump {limit, slow_only}` — windowed telemetry
//!   series, histogram summaries, and request-level flight records.
//!
//! Internals: a single event-driven reactor thread owns every connection
//! (nonblocking accept + poll loop — idle sockets cost zero threads),
//! and compute requests route by workload name to a map of per-tenant
//! engine shards. Each shard has its own fixed worker slice fed by a
//! bounded queue (full ⇒ typed `Overloaded` reply, never unbounded
//! buffering) and its own sharded LRU cache of fully rendered replies
//! keyed on the characterization fingerprint; shards beyond the resident
//! ceiling are evicted least-recently-used and rebuilt lazily from their
//! [`TenantSpec`]. Shutdown drains in flight replies, then joins the
//! reactor and every worker. Replies are bit-identical to direct engine
//! calls at any worker or shard count because every `f64` crosses the
//! wire in shortest-round-trip form.
//!
//! # Quick start
//!
//! ```
//! use mcdvfs_core::{InefficiencyBudget, SweepEngine};
//! use mcdvfs_serve::{Client, Request, Response, ServeState, Server, ServerConfig};
//! use mcdvfs_types::FrequencyGrid;
//! use mcdvfs_workloads::Benchmark;
//!
//! let trace = Benchmark::Gobmk.trace().window(0, 8);
//! let engine = SweepEngine::characterize(
//!     &mcdvfs_sim::System::galaxy_nexus_class(),
//!     &trace,
//!     FrequencyGrid::coarse(),
//! );
//! let server = Server::start(
//!     "127.0.0.1:0",
//!     ServeState::new(engine, trace),
//!     ServerConfig::default(),
//! )
//! .unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! let reply = client
//!     .request(&Request::OptimalSetting {
//!         budget: InefficiencyBudget::bounded(1.3).unwrap(),
//!     })
//!     .unwrap();
//! let Response::OptimalSetting(choices) = reply else {
//!     panic!("unexpected reply");
//! };
//! assert_eq!(choices.len(), 8);
//! let metrics = server.shutdown();
//! assert_eq!(metrics.counter("requests.total"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod client;
mod protocol;
mod reactor;
mod server;
mod shard;
mod telemetry;

pub use cache::{CacheKey, ShardedLru};
pub use client::{Client, ClientPool};
pub use protocol::{
    read_frame, write_frame, Request, Response, WireChoice, WireCluster, WireHealth, WireHistogram,
    WirePolicyCounters, WirePolicyReport, WireRegion, WireReport, WireShard, WireStage, WireStats,
    WireStoreCounters, WireTelemetry, WireTrace, WireWindow, MAX_FRAME_BYTES,
};
pub use server::{ServeState, Server, ServerConfig, ServerHandle};
pub use shard::TenantSpec;
pub use telemetry::{cross_check, CrossCheck};
