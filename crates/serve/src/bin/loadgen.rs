//! Load generator for the serving layer.
//!
//! Drives in-process servers over loopback in four phases:
//!
//! 1. **Steady (closed loop)** — client threads each hold a
//!    [`ClientPool`] of many connections and round-robin a seeded query
//!    mix across ≥4 workload tenants, so the reactor sustains a
//!    four-digit population of concurrent (mostly idle) sockets; asserts
//!    zero errors, zero shed requests, zero protocol errors, a warm
//!    cache, and all four engine shards resident.
//! 2. **Steady (open loop)** — the same server under paced arrivals,
//!    reported as its own latency row.
//! 3. **Overload** — a deliberately starved server (one worker, tiny
//!    queue, artificial compute delay) under uncacheable unique-budget
//!    queries; asserts the bounded queue sheds with typed `Overloaded`
//!    replies and every request still gets *an* answer (no hangs).
//! 4. **Mixed-tenant scaling** — the same uncacheable load with a fixed
//!    per-request compute cost, once against a single-engine server and
//!    once spread over four tenant shards (one worker each); asserts the
//!    sharded layout clears ≥2x the single-engine throughput, since the
//!    four shard workers overlap delays one queue must serialize.
//!
//! 5. **Cold vs warm start** — two servers share a snapshot store: the
//!    first characterizes its tenants on first touch (and persists), the
//!    second warm-starts the same tenants from the snapshots; asserts the
//!    warm first-request latency beats cold by the gated floor and that
//!    the `store.hits`/`store.misses` counters account for every build.
//!
//! After the steady phases a **telemetry validation pass** cross-checks
//! the server's own instrumentation against what the clients observed:
//! the server-decoded request total must equal the client-issued total
//! *exactly*, and the server-measured request p95 must not exceed the
//! client-measured p95 (server samples exclude the network and client
//! stack). The server's window series and flight records are exported
//! as `results/SERVE_telemetry.jsonl` / `results/SERVE_traces.jsonl`.
//!
//! Results land in `results/BENCH_serve.json` (schema `mcdvfs/serve-v4`,
//! with a top-level `"telemetry"` cross-check block) and every artifact
//! is recorded in `results/MANIFEST.json` through the provenance
//! harness. `--smoke` runs every phase scaled down and, like the sweep
//! bench, validates the *committed* report (schema, required rows, the
//! 2x mixed-tenant comparison, the 3x warm-start comparison, the steady
//! p95 floor, and cross-check agreement in the committed telemetry
//! block) instead of overwriting
//! it — the cross-check itself still runs live in smoke. Exits nonzero
//! on any assertion failure.
//!
//! Usage: `loadgen [--smoke] [--clients N] [--conns N] [--requests N]
//! [--workers N] [--seed N]`

use mcdvfs_bench::quickbench::{BenchReport, BenchStats};
use mcdvfs_bench::{results_dir, Harness, Json};
use mcdvfs_core::{InefficiencyBudget, SweepEngine};
use mcdvfs_obs::{duration_edges_ns, Histogram};
use mcdvfs_serve::{
    cross_check, Client, ClientPool, Request, Response, ServeState, Server, ServerConfig,
    ServerHandle, TenantSpec, WireStats, WireTelemetry, WireTrace,
};
use mcdvfs_sim::System;
use mcdvfs_types::{FrequencyGrid, SplitMix64};
use mcdvfs_workloads::Benchmark;
use std::net::SocketAddr;
use std::path::Path;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

/// Report schema written by a full run and required by the smoke gate.
const SCHEMA: &str = "mcdvfs/serve-v4";

/// Latency rows a committed report must carry.
const REQUIRED_ENTRIES: [&str; 7] = [
    "steady.request_latency",
    "steady_open.request_latency",
    "overload.request_latency",
    "mixed_tenant.request_latency",
    "baseline_single_engine.request_latency",
    "cold_start.first_request_latency",
    "warm_start.first_request_latency",
];

/// The committed mixed-tenant speedup row and its floor.
const REQUIRED_COMPARISON: &str = "mixed_tenant_vs_single_engine";
const SPEEDUP_FLOOR: f64 = 2.0;

/// The committed warm-start speedup row and its floor: a snapshot
/// warm-start must answer a tenant's first request at least this much
/// faster than characterize-on-first-touch.
const COLD_WARM_COMPARISON: &str = "warm_start_vs_cold_start";
const COLD_WARM_FLOOR: f64 = 3.0;

/// Steady-phase connection floor the committed report must demonstrate.
const MIN_STEADY_CONNECTIONS: f64 = 1000.0;

/// Committed steady-phase p95 ceiling (ns). The recorded full run sits
/// well under this; a report regressing past it fails the smoke gate.
const STEADY_P95_FLOOR_NS: f64 = 50_000_000.0;

/// Tenants the steady and mixed phases spread across; `None` is the
/// default (gobmk) engine, the rest resolve lazily built shards.
const TENANTS: [Option<&str>; 4] = [None, Some("bzip2"), Some("gcc"), Some("perlbench")];

/// Parsed command line.
struct Args {
    smoke: bool,
    clients: usize,
    conns: usize,
    requests: usize,
    workers: usize,
    seed: u64,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut args = Args {
            smoke: false,
            clients: 16,
            conns: 64,
            requests: 200,
            workers: 4,
            seed: 0x5eed,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--smoke" => {
                    args.smoke = true;
                    args.clients = 4;
                    args.conns = 8;
                    args.requests = 40;
                }
                "--clients" => args.clients = parse_num(&value("--clients")?)?,
                "--conns" => args.conns = parse_num(&value("--conns")?)?,
                "--requests" => args.requests = parse_num(&value("--requests")?)?,
                "--workers" => args.workers = parse_num(&value("--workers")?)?,
                "--seed" => args.seed = parse_num(&value("--seed")?)? as u64,
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(args)
    }
}

fn parse_num(text: &str) -> Result<usize, String> {
    text.parse().map_err(|_| format!("invalid number {text:?}"))
}

/// What one client thread observed.
#[derive(Default)]
struct ClientTally {
    latency: Option<Histogram>,
    ok: u64,
    overloaded: u64,
    errors: u64,
}

impl ClientTally {
    fn absorb(&mut self, other: ClientTally) {
        match (&mut self.latency, other.latency) {
            (Some(mine), Some(theirs)) => mine.merge(&theirs),
            (mine @ None, theirs) => *mine = theirs,
            _ => {}
        }
        self.ok += other.ok;
        self.overloaded += other.overloaded;
        self.errors += other.errors;
    }

    fn stats(&self) -> Option<BenchStats> {
        self.latency.as_ref().and_then(BenchStats::from_histogram)
    }
}

/// The steady-phase query mix, reproducible from one seed.
fn pick_query(rng: &mut SplitMix64) -> Request {
    let budgets = [
        Some(1.0),
        Some(1.1),
        Some(1.3),
        Some(1.6),
        None, // unconstrained
    ];
    let budget = match budgets[rng.range_usize(0, budgets.len())] {
        Some(b) => InefficiencyBudget::bounded(b).expect("mix budgets are valid"),
        None => InefficiencyBudget::Unconstrained,
    };
    let thresholds = [0.01, 0.03, 0.05];
    let threshold = thresholds[rng.range_usize(0, thresholds.len())];
    match rng.range_usize(0, 6) {
        0 | 1 => Request::OptimalSetting { budget },
        2 => Request::Cluster { budget, threshold },
        3 => Request::StableRegions { budget, threshold },
        4 => Request::GovernedReplay {
            governor: if rng.next_u64().is_multiple_of(2) {
                "ideal"
            } else {
                "paper"
            }
            .to_string(),
            budget,
        },
        _ => Request::Health,
    }
}

/// Runs `threads` client threads, each holding a pool of
/// `conns_per_thread` connections round-robined over its request list.
/// All pools connect before the barrier releases, so every socket is
/// concurrently open for the whole timed window; the returned duration
/// covers requests only, not connection setup.
fn run_pools(
    addr: SocketAddr,
    threads: usize,
    conns_per_thread: usize,
    interarrival: Option<Duration>,
    make_requests: impl Fn(usize) -> Vec<(Option<&'static str>, Request)> + Send + Sync,
) -> (ClientTally, Duration) {
    let barrier = Barrier::new(threads + 1);
    let mut total = ClientTally::default();
    let mut elapsed = Duration::ZERO;
    thread::scope(|scope| {
        let barrier = &barrier;
        let make_requests = &make_requests;
        let handles: Vec<_> = (0..threads)
            .map(|c| {
                scope.spawn(move || {
                    let mut tally = ClientTally {
                        latency: Some(Histogram::new(duration_edges_ns())),
                        ..ClientTally::default()
                    };
                    let pool = ClientPool::connect(addr, conns_per_thread).ok();
                    barrier.wait();
                    let Some(mut pool) = pool else {
                        tally.errors += 1;
                        return tally;
                    };
                    for (workload, request) in make_requests(c) {
                        if let Some(gap) = interarrival {
                            thread::sleep(gap);
                        }
                        let t0 = Instant::now();
                        match pool.request_for(workload, &request) {
                            Ok(Response::Overloaded) => tally.overloaded += 1,
                            Ok(Response::Error(_)) | Err(_) => tally.errors += 1,
                            Ok(_) => {
                                tally.ok += 1;
                                if let Some(h) = &mut tally.latency {
                                    h.add(t0.elapsed().as_nanos() as f64);
                                }
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        for handle in handles {
            total.absorb(handle.join().expect("client thread panicked"));
        }
        elapsed = t0.elapsed();
    });
    (total, elapsed)
}

fn start_server(state: ServeState, config: ServerConfig) -> ServerHandle {
    Server::start("127.0.0.1:0", state, config).expect("loopback bind")
}

/// Default gobmk engine plus (optionally) the three named tenant specs.
/// The default engine always characterizes on the coarse grid (it is
/// built eagerly at server start, outside every timed window); `grid`
/// sets the lazily characterized tenants' grid — the cold-start phase
/// passes the fine 496-setting grid so first-touch characterization
/// cost is large next to a snapshot load.
fn build_state(samples: usize, with_tenants: bool, grid: FrequencyGrid) -> ServeState {
    let trace = Benchmark::Gobmk.trace().window(0, samples);
    let system = System::galaxy_nexus_class();
    let engine = SweepEngine::characterize(&system, &trace, FrequencyGrid::coarse());
    let mut state = ServeState::new(engine, trace);
    if with_tenants {
        for (name, benchmark) in [
            ("bzip2", Benchmark::Bzip2),
            ("gcc", Benchmark::Gcc),
            ("perlbench", Benchmark::Perlbench),
        ] {
            state = state.with_tenant(
                name,
                TenantSpec::new(system.clone(), benchmark.trace().window(0, samples), grid),
            );
        }
    }
    state
}

/// Builds every tenant's shard before a timed window so lazy
/// characterization cost never pollutes latency histograms.
fn warm_tenants(addr: SocketAddr) -> WireStats {
    let mut client = Client::connect(addr).expect("warmup connect");
    for tenant in TENANTS {
        let reply = client.request_for(tenant, &Request::Health);
        assert!(
            matches!(reply, Ok(Response::Health(_))),
            "warmup health for {tenant:?} failed: {reply:?}"
        );
    }
    match client.request(&Request::Stats) {
        Ok(Response::Stats(stats)) => stats,
        other => panic!("warmup stats failed: {other:?}"),
    }
}

/// Uncacheable per-thread request list: every budget is unique, so the
/// reply cache cannot absorb any of the load.
fn unique_budget_requests(
    tenant: Option<&'static str>,
    thread: usize,
    count: usize,
) -> Vec<(Option<&'static str>, Request)> {
    (0..count)
        .map(|i| {
            let budget = 1.0 + (thread * 10_000 + i + 1) as f64 * 1e-7;
            (
                tenant,
                Request::OptimalSetting {
                    budget: InefficiencyBudget::bounded(budget).expect("budgets are valid"),
                },
            )
        })
        .collect()
}

/// Times the *first* request each named tenant answers on a fresh
/// server — cold this is characterize-on-first-touch, warm it is a
/// snapshot load — then fetches the server's stats for the store
/// counters. Health is the lightest request that still forces the
/// tenant's shard to resolve, so the latency isolates the build cost.
fn first_touch_latency(addr: SocketAddr) -> (ClientTally, Option<WireStats>) {
    let mut tally = ClientTally {
        latency: Some(Histogram::new(duration_edges_ns())),
        ..ClientTally::default()
    };
    let mut client = Client::connect(addr).expect("cold-start connect");
    for tenant in TENANTS.iter().flatten() {
        let t0 = Instant::now();
        match client.request_for(Some(tenant), &Request::Health) {
            Ok(Response::Health(_)) => {
                tally.ok += 1;
                if let Some(h) = &mut tally.latency {
                    h.add(t0.elapsed().as_nanos() as f64);
                }
            }
            _ => tally.errors += 1,
        }
    }
    let stats = match client.request(&Request::Stats) {
        Ok(Response::Stats(stats)) => Some(stats),
        _ => None,
    };
    (tally, stats)
}

fn main() {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("loadgen: {message}");
            std::process::exit(2);
        }
    };
    let mut harness = Harness::new("loadgen");
    let mut failures: Vec<String> = Vec::new();
    let mut bench = BenchReport::new(SCHEMA);

    // ---- Phases 1+2: steady closed + open loop, mixed tenants ------------
    let steady_connections = args.clients * args.conns;
    let state = build_state(40, true, FrequencyGrid::coarse())
        .with_profiler(Arc::clone(harness.profiler()));
    let server = start_server(
        state,
        ServerConfig {
            workers: args.workers,
            queue_bound: 256,
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();
    let warm = warm_tenants(addr);
    if warm.engines != TENANTS.len() as u64 {
        failures.push(format!(
            "steady: {} engine shards resident after warmup, expected {}",
            warm.engines,
            TENANTS.len()
        ));
    }
    let seed = args.seed;
    let per_thread = args.requests;
    let (steady, steady_elapsed) = run_pools(addr, args.clients, args.conns, None, |c| {
        let mut rng = SplitMix64::new(seed ^ (c as u64).wrapping_mul(0x9e37_79b9));
        (0..per_thread)
            .map(|i| (TENANTS[(c + i) % TENANTS.len()], pick_query(&mut rng)))
            .collect()
    });
    let steady_issued = (args.clients * per_thread) as u64;
    let steady_rps = steady.ok as f64 / steady_elapsed.as_secs_f64().max(1e-9);

    let open_per_thread = (per_thread / 4).max(1);
    let (steady_open, open_elapsed) = run_pools(
        addr,
        args.clients,
        args.conns.min(16),
        Some(Duration::from_millis(2)),
        |c| {
            let mut rng = SplitMix64::new(seed ^ 0xa5a5 ^ (c as u64).wrapping_mul(0x9e37_79b9));
            (0..open_per_thread)
                .map(|i| (TENANTS[(c + i) % TENANTS.len()], pick_query(&mut rng)))
                .collect()
        },
    );
    let open_issued = (args.clients * open_per_thread) as u64;
    let open_rps = steady_open.ok as f64 / open_elapsed.as_secs_f64().max(1e-9);

    // ---- Telemetry validation pass ---------------------------------------
    // One connection, fixed order, stats strictly last: by the time the
    // stats reply is built its `requests` counter has seen every request
    // this process issued — 5 warmup queries, both steady phases,
    // telemetry, trace_dump, and the stats query itself.
    let mut probe = Client::connect(addr).expect("telemetry connect");
    let telemetry = match probe.request(&Request::Telemetry) {
        Ok(Response::Telemetry(t)) => Some(t),
        other => {
            failures.push(format!("telemetry query failed: {other:?}"));
            None
        }
    };
    let traces = match probe.request(&Request::TraceDump {
        limit: 256,
        slow_only: false,
    }) {
        Ok(Response::TraceDump(t)) => Some(t),
        other => {
            failures.push(format!("trace_dump query failed: {other:?}"));
            None
        }
    };
    let stats = probe.request(&Request::Stats).ok();
    drop(probe);
    let metrics = server.shutdown();

    for (phase, tally, issued) in [
        ("steady", &steady, steady_issued),
        ("steady_open", &steady_open, open_issued),
    ] {
        let answered = tally.ok + tally.overloaded + tally.errors;
        if answered != issued {
            failures.push(format!("{phase}: {answered}/{issued} requests answered"));
        }
        if tally.errors > 0 {
            failures.push(format!("{phase}: {} error replies", tally.errors));
        }
        if tally.overloaded > 0 {
            failures.push(format!(
                "{phase}: {} shed requests at default provisioning",
                tally.overloaded
            ));
        }
    }
    let cache_hits = metrics.counter("cache.hit");
    if cache_hits == 0 {
        failures.push("steady: cache hit-rate is zero".to_string());
    }
    if metrics.counter("connections.idle_closed") > 0 {
        failures.push("steady: live connections were reaped as idle".to_string());
    }
    if metrics.counter("connections.accepted") < steady_connections as u64 {
        failures.push(format!(
            "steady: accepted {} connections, expected >= {steady_connections}",
            metrics.counter("connections.accepted")
        ));
    }
    match &stats {
        Some(Response::Stats(wire)) => {
            if wire.protocol_errors > 0 {
                failures.push(format!(
                    "steady: server saw {} protocol errors",
                    wire.protocol_errors
                ));
            }
            if wire.engines != TENANTS.len() as u64 {
                failures.push(format!(
                    "steady: {} engine shards resident, expected {}",
                    wire.engines,
                    TENANTS.len()
                ));
            }
        }
        _ => failures.push("steady: stats query failed".to_string()),
    }

    // Server-vs-client cross-check: exact request-count agreement and a
    // server p95 at or under the client p95 (server samples exclude the
    // network and client stack). Runs in smoke and full runs alike.
    let client_total = 5 + steady_issued + open_issued + 3;
    let mut client_hist = Histogram::new(duration_edges_ns());
    for phase in [&steady, &steady_open] {
        if let Some(h) = &phase.latency {
            client_hist.merge(h);
        }
    }
    let client_p95_ns = client_hist.percentile(0.95).unwrap_or(f64::INFINITY);
    let mut check = None;
    match (&stats, &telemetry) {
        (Some(Response::Stats(wire)), Some(tel)) => {
            match cross_check(wire, tel, client_total, client_p95_ns) {
                Ok(c) => {
                    println!(
                        "telemetry cross-check: server counted {} == client issued {}, \
                         server p95 {:.3} ms <= client p95 {:.3} ms",
                        c.server_total,
                        c.client_total,
                        c.server_p95_ns / 1e6,
                        c.client_p95_ns / 1e6,
                    );
                    check = Some(c);
                }
                Err(e) => failures.push(format!("telemetry cross-check: {e}")),
            }
        }
        _ => failures.push("telemetry cross-check skipped: missing replies".to_string()),
    }
    if let Some(tel) = &telemetry {
        if !tel.enabled {
            failures.push("telemetry: flight recorder reported disabled".to_string());
        }
        if tel.windows.is_empty() {
            failures.push("telemetry: no 1-second windows recorded".to_string());
        }
    }
    if let Some(traces) = &traces {
        if traces.is_empty() {
            failures.push("trace_dump returned no flight records".to_string());
        }
        for t in traces {
            if !t.stages.windows(2).all(|w| w[0].t_ns <= w[1].t_ns) {
                failures.push(format!("trace {} stage timestamps regress", t.id));
                break;
            }
        }
    }
    let hit_rate = cache_hits as f64 / (cache_hits + metrics.counter("cache.miss")).max(1) as f64;
    println!(
        "steady: {} ok / {} issued over {:.2}s across {} connections — {:.0} req/s, \
         cache hit-rate {:.2}",
        steady.ok,
        steady_issued,
        steady_elapsed.as_secs_f64(),
        steady_connections,
        steady_rps,
        hit_rate,
    );
    println!(
        "steady_open: {} ok / {} issued over {:.2}s — {:.0} req/s",
        steady_open.ok,
        open_issued,
        open_elapsed.as_secs_f64(),
        open_rps,
    );

    // ---- Phase 3: overload ------------------------------------------------
    // One slow worker, a two-slot queue, and unique budgets per request so
    // the cache cannot absorb the burst: the bounded queue must shed.
    let overload_server = start_server(
        build_state(10, false, FrequencyGrid::coarse()),
        ServerConfig {
            workers: 1,
            queue_bound: 2,
            compute_delay: Duration::from_millis(20),
            ..ServerConfig::default()
        },
    );
    let (overload, _) = run_pools(overload_server.addr(), 6, 1, None, |c| {
        unique_budget_requests(None, c, 30)
    });
    let overload_metrics = overload_server.shutdown();
    let overload_issued = 6 * 30_u64;
    let overload_answered = overload.ok + overload.overloaded + overload.errors;
    if overload_answered != overload_issued {
        failures.push(format!(
            "overload: {overload_answered}/{overload_issued} requests answered (hang?)"
        ));
    }
    if overload.errors > 0 {
        failures.push(format!("overload: {} error replies", overload.errors));
    }
    if overload.overloaded == 0 {
        failures.push("overload: queue never shed — backpressure untested".to_string());
    }
    println!(
        "overload: {} ok, {} shed of {} issued (server counted {})",
        overload.ok,
        overload.overloaded,
        overload_issued,
        overload_metrics.counter("overloaded"),
    );

    // ---- Phase 4: mixed-tenant scaling vs single engine -------------------
    // A fixed compute delay makes per-request cost identical in both
    // layouts; with one worker per shard, four shards overlap four delays
    // the single-engine queue must serialize. Unique budgets defeat the
    // cache, the load shape is the same, so the throughput ratio isolates
    // the sharding win.
    let scale_requests = if args.smoke { 10 } else { 40 };
    let scale_threads = 8;
    let scale_config = ServerConfig {
        workers: 1,
        queue_bound: 256,
        compute_delay: Duration::from_millis(3),
        ..ServerConfig::default()
    };

    let baseline_server = start_server(
        build_state(10, false, FrequencyGrid::coarse()),
        scale_config.clone(),
    );
    let (baseline, baseline_elapsed) =
        run_pools(baseline_server.addr(), scale_threads, 1, None, |c| {
            unique_budget_requests(None, c, scale_requests)
        });
    let _ = baseline_server.shutdown();
    let baseline_rps = baseline.ok as f64 / baseline_elapsed.as_secs_f64().max(1e-9);

    let mixed_server = start_server(build_state(10, true, FrequencyGrid::coarse()), scale_config);
    let mixed_addr = mixed_server.addr();
    let mixed_warm = warm_tenants(mixed_addr);
    let (mixed, mixed_elapsed) = run_pools(mixed_addr, scale_threads, 1, None, |c| {
        unique_budget_requests(TENANTS[c % TENANTS.len()], c, scale_requests)
    });
    let _ = mixed_server.shutdown();
    let mixed_rps = mixed.ok as f64 / mixed_elapsed.as_secs_f64().max(1e-9);

    let scale_issued = (scale_threads * scale_requests) as u64;
    for (phase, tally) in [("baseline", &baseline), ("mixed_tenant", &mixed)] {
        let answered = tally.ok + tally.overloaded + tally.errors;
        if answered != scale_issued || tally.ok != scale_issued {
            failures.push(format!(
                "{phase}: {} ok / {} overloaded / {} errors of {scale_issued} issued",
                tally.ok, tally.overloaded, tally.errors
            ));
        }
    }
    if mixed_warm.engines != TENANTS.len() as u64 {
        failures.push(format!(
            "mixed_tenant: {} shards resident, expected {}",
            mixed_warm.engines,
            TENANTS.len()
        ));
    }
    let speedup = mixed_rps / baseline_rps.max(1e-9);
    println!(
        "mixed_tenant: {mixed_rps:.0} req/s over {} shards vs {baseline_rps:.0} req/s single \
         engine — {speedup:.2}x",
        TENANTS.len(),
    );
    if speedup < SPEEDUP_FLOOR {
        failures.push(format!(
            "mixed_tenant: {speedup:.2}x over single engine, need >= {SPEEDUP_FLOOR}x"
        ));
    }

    // ---- Phase 5: cold vs warm start --------------------------------------
    // Two servers share one snapshot store. The first pays
    // characterize-on-first-touch for every named tenant and persists the
    // grids; the second resolves the same tenants from the snapshots. The
    // first-request latency ratio is the warm-start win, and the store
    // counters must account for every build on both sides.
    let tenant_count = (TENANTS.len() - 1) as u64;
    // 40 samples is the longest window every tenant trace supports
    // (bzip2 is the shortest at exactly 40) — the same size the steady
    // phases serve.
    let cold_samples = 40;
    let store_dir =
        std::env::temp_dir().join(format!("mcdvfs-loadgen-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let cold_config = ServerConfig {
        snapshot_dir: Some(store_dir.clone()),
        ..ServerConfig::default()
    };

    let cold_server = start_server(
        build_state(cold_samples, true, FrequencyGrid::fine()),
        cold_config.clone(),
    );
    let (cold, cold_wire) = first_touch_latency(cold_server.addr());
    let _ = cold_server.shutdown();

    let warm_server = start_server(
        build_state(cold_samples, true, FrequencyGrid::fine()),
        cold_config,
    );
    let (warm, warm_wire) = first_touch_latency(warm_server.addr());
    let _ = warm_server.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);

    for (phase, tally) in [("cold_start", &cold), ("warm_start", &warm)] {
        if tally.errors > 0 || tally.ok != tenant_count {
            failures.push(format!(
                "{phase}: {} ok / {} errors of {tenant_count} first requests",
                tally.ok, tally.errors
            ));
        }
    }
    let cold_store = cold_wire.as_ref().map(|w| w.store);
    let warm_store = warm_wire.as_ref().map(|w| w.store);
    match cold_store {
        Some(s) if s.hits == 0 && s.misses >= tenant_count => {}
        other => failures.push(format!(
            "cold_start: store counters {other:?}, expected 0 hits and >= {tenant_count} misses"
        )),
    }
    match warm_store {
        Some(s) if s.hits == tenant_count && s.misses == 0 && s.bytes_read > 0 => {}
        other => failures.push(format!(
            "warm_start: store counters {other:?}, expected {tenant_count} hits, 0 misses, \
             nonzero bytes_read"
        )),
    }
    let (cold_stats, warm_stats) = (cold.stats(), warm.stats());
    let cold_warm_speedup = match (&cold_stats, &warm_stats) {
        (Some(c), Some(w)) => c.mean.as_secs_f64() / w.mean.as_secs_f64().max(1e-12),
        _ => 0.0,
    };
    println!(
        "cold_start: first request mean {:.3} ms cold vs {:.3} ms warm over {} tenants — {:.2}x \
         ({} snapshot bytes read)",
        cold_stats
            .as_ref()
            .map_or(0.0, |s| s.mean.as_secs_f64() * 1e3),
        warm_stats
            .as_ref()
            .map_or(0.0, |s| s.mean.as_secs_f64() * 1e3),
        tenant_count,
        cold_warm_speedup,
        warm_store.map_or(0, |s| s.bytes_read),
    );
    if cold_warm_speedup < COLD_WARM_FLOOR {
        failures.push(format!(
            "cold_start: warm start only {cold_warm_speedup:.2}x faster than cold, \
             need >= {COLD_WARM_FLOOR}x"
        ));
    }

    // ---- Report -----------------------------------------------------------
    for (name, tally) in [
        ("steady.request_latency", &steady),
        ("steady_open.request_latency", &steady_open),
        ("overload.request_latency", &overload),
        ("mixed_tenant.request_latency", &mixed),
        ("baseline_single_engine.request_latency", &baseline),
        ("cold_start.first_request_latency", &cold),
        ("warm_start.first_request_latency", &warm),
    ] {
        match tally.stats() {
            Some(stats) => bench.entry(name, stats),
            None => failures.push(format!("{name}: no latency samples")),
        }
    }
    if let (Some(base), Some(opt)) = (baseline.stats(), mixed.stats()) {
        bench.compare(REQUIRED_COMPARISON, base, opt);
    }
    if let (Some(c), Some(w)) = (cold_stats, warm_stats) {
        bench.compare(COLD_WARM_COMPARISON, c, w);
    }
    bench.section(
        "cold_start",
        &[
            ("tenants", tenant_count as f64),
            ("samples_per_tenant", cold_samples as f64),
            ("speedup", cold_warm_speedup),
            (
                "cold_store_misses",
                cold_store.map_or(-1.0, |s| s.misses as f64),
            ),
            (
                "warm_store_hits",
                warm_store.map_or(-1.0, |s| s.hits as f64),
            ),
            (
                "warm_store_bytes_read",
                warm_store.map_or(-1.0, |s| s.bytes_read as f64),
            ),
        ],
    );
    bench.note("steady_connections", steady_connections as f64);
    bench.note("steady_throughput_rps", steady_rps);
    bench.note("steady_open_throughput_rps", open_rps);
    bench.note("baseline_throughput_rps", baseline_rps);
    bench.note("mixed_tenant_throughput_rps", mixed_rps);
    bench.note("mixed_tenant_shards", TENANTS.len() as f64);
    bench.note("mixed_tenant_speedup", speedup);
    if let (Some(c), Some(tel)) = (check, &telemetry) {
        bench.section(
            "telemetry",
            &[
                ("server_total", c.server_total as f64),
                ("client_total", c.client_total as f64),
                ("server_p95_ns", c.server_p95_ns),
                ("client_p95_ns", c.client_p95_ns),
                ("windows", tel.windows.len() as f64),
                ("flight_recorded", tel.flight_recorded as f64),
                ("flight_dropped", tel.flight_dropped as f64),
                ("flight_slow", tel.flight_slow as f64),
            ],
        );
    }

    let path = results_dir().join("BENCH_serve.json");
    harness.note("clients", args.clients);
    harness.note("conns_per_client", args.conns);
    harness.note("requests_per_client", args.requests);
    harness.note("workers", args.workers);
    harness.note("seed", args.seed);
    harness.note("steady_connections", steady_connections);
    harness.note("throughput_rps", format!("{steady_rps:.0}"));
    harness.note("mixed_tenant_speedup", format!("{speedup:.2}"));
    harness.note("cold_warm_speedup", format!("{cold_warm_speedup:.2}"));
    if args.smoke {
        // A smoke window would clobber the committed full-run numbers;
        // validate the committed report and gate on it instead.
        validate_committed(&path, &mut failures);
    } else {
        match bench.write_json(&path) {
            Ok(()) => {
                println!("[bench written to {}]", path.display());
                harness.record_file(&path);
            }
            Err(e) => eprintln!("[warning: could not write {}: {e}]", path.display()),
        }
        // Raw telemetry artifacts ride along with the report and are
        // provenance-recorded so the manifest pins what a reader sees.
        if let Some(tel) = &telemetry {
            let path = results_dir().join("SERVE_telemetry.jsonl");
            match write_windows_jsonl(&path, tel) {
                Ok(()) => harness.record_file(&path),
                Err(e) => eprintln!("[warning: could not write {}: {e}]", path.display()),
            }
        }
        if let Some(traces) = &traces {
            let path = results_dir().join("SERVE_traces.jsonl");
            match write_traces_jsonl(&path, traces) {
                Ok(()) => harness.record_file(&path),
                Err(e) => eprintln!("[warning: could not write {}: {e}]", path.display()),
            }
        }
    }
    harness.finish();

    if failures.is_empty() {
        println!("loadgen: all assertions passed");
        std::process::exit(0);
    }
    for failure in &failures {
        eprintln!("loadgen FAILURE: {failure}");
    }
    std::process::exit(1);
}

/// Writes the server's 1-second window series as one JSON object per
/// line (the field names mirror the wire `telemetry` reply).
fn write_windows_jsonl(path: &Path, tel: &WireTelemetry) -> std::io::Result<()> {
    let mut out = String::new();
    for w in &tel.windows {
        out.push_str(&format!(
            "{{\"second\": {}, \"requests\": {}, \"ok\": {}, \"errors\": {}, \"shed\": {}, \
             \"queue_depth_max\": {}, \"p50_ns\": {:.0}, \"p95_ns\": {:.0}, \"max_ns\": {:.0}}}\n",
            w.second,
            w.requests,
            w.ok,
            w.errors,
            w.shed,
            w.queue_depth_max,
            w.p50_ns,
            w.p95_ns,
            w.max_ns
        ));
    }
    std::fs::write(path, out)
}

/// Writes the dumped flight records as one JSON object per line, stage
/// timestamps in pipeline order.
fn write_traces_jsonl(path: &Path, traces: &[WireTrace]) -> std::io::Result<()> {
    let mut out = String::new();
    for t in traces {
        let stages: Vec<String> = t
            .stages
            .iter()
            .map(|s| format!("{{\"stage\": \"{}\", \"t_ns\": {}}}", s.stage, s.t_ns))
            .collect();
        out.push_str(&format!(
            "{{\"id\": {}, \"kind\": \"{}\", \"fingerprint\": \"{}\", \"outcome\": \"{}\", \
             \"total_ns\": {}, \"stages\": [{}]}}\n",
            t.id,
            t.kind,
            t.fingerprint,
            t.outcome,
            t.total_ns,
            stages.join(", ")
        ));
    }
    std::fs::write(path, out)
}

/// The CI smoke gate over the committed report: `serve-v4` schema, every
/// phase row present, the mixed-tenant comparison at ≥2x, the warm-start
/// comparison and `cold_start` block at ≥3x, a demonstrated
/// four-digit steady connection count, a steady p95 under the floor, and
/// a telemetry block whose recorded cross-check still agrees.
fn validate_committed(path: &Path, failures: &mut Vec<String>) {
    let doc = match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|text| Json::parse(&text))
    {
        Ok(doc) => doc,
        Err(e) => {
            failures.push(format!("cannot read {}: {e}", path.display()));
            return;
        }
    };
    match doc.get("schema").and_then(Json::as_str) {
        Some(SCHEMA) => {}
        other => failures.push(format!(
            "{}: schema {other:?}, expected {SCHEMA:?}",
            path.display()
        )),
    }
    let entries = doc.get("entries").and_then(Json::as_arr).unwrap_or(&[]);
    for required in REQUIRED_ENTRIES {
        let row = entries
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(required));
        let Some(row) = row else {
            failures.push(format!("committed report lacks a {required:?} row"));
            continue;
        };
        let p95 = row
            .get("stats")
            .and_then(|s| s.get("p95_ns"))
            .and_then(Json::as_f64)
            .unwrap_or(f64::INFINITY);
        println!("recorded {required:<40} p95 {:>9.3} ms", p95 / 1e6);
        if required == "steady.request_latency" && p95 > STEADY_P95_FLOOR_NS {
            failures.push(format!(
                "committed steady p95 {:.1} ms exceeds the {:.1} ms floor",
                p95 / 1e6,
                STEADY_P95_FLOOR_NS / 1e6
            ));
        }
    }
    let comparisons = doc.get("comparisons").and_then(Json::as_arr).unwrap_or(&[]);
    match comparisons
        .iter()
        .find(|r| r.get("name").and_then(Json::as_str) == Some(REQUIRED_COMPARISON))
    {
        None => failures.push(format!(
            "committed report lacks the {REQUIRED_COMPARISON:?} comparison"
        )),
        Some(row) => {
            let speedup = row.get("speedup").and_then(Json::as_f64).unwrap_or(0.0);
            println!("recorded {REQUIRED_COMPARISON:<40} {speedup:>6.2}x");
            if speedup < SPEEDUP_FLOOR {
                failures.push(format!(
                    "committed mixed-tenant speedup {speedup:.2}x is below {SPEEDUP_FLOOR}x"
                ));
            }
        }
    }
    match comparisons
        .iter()
        .find(|r| r.get("name").and_then(Json::as_str) == Some(COLD_WARM_COMPARISON))
    {
        None => failures.push(format!(
            "committed report lacks the {COLD_WARM_COMPARISON:?} comparison"
        )),
        Some(row) => {
            let speedup = row.get("speedup").and_then(Json::as_f64).unwrap_or(0.0);
            println!("recorded {COLD_WARM_COMPARISON:<40} {speedup:>6.2}x");
            if speedup < COLD_WARM_FLOOR {
                failures.push(format!(
                    "committed warm-start speedup {speedup:.2}x is below {COLD_WARM_FLOOR}x"
                ));
            }
        }
    }
    match doc.get("cold_start") {
        None => failures.push("committed report lacks the \"cold_start\" block".to_string()),
        Some(block) => {
            let get = |key: &str| block.get(key).and_then(Json::as_f64);
            let hits = get("warm_store_hits").unwrap_or(-1.0);
            let tenants = get("tenants").unwrap_or(f64::INFINITY);
            if hits < tenants {
                failures.push(format!(
                    "committed cold_start block: {hits} warm store hits for {tenants} tenants"
                ));
            }
            if get("speedup").unwrap_or(0.0) < COLD_WARM_FLOOR {
                failures.push("committed cold_start speedup is below the floor".to_string());
            }
        }
    }
    let connections = doc
        .get("meta")
        .and_then(|m| m.get("steady_connections"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if connections < MIN_STEADY_CONNECTIONS {
        failures.push(format!(
            "committed report demonstrates {connections} steady connections, \
             need >= {MIN_STEADY_CONNECTIONS}"
        ));
    }
    match doc.get("telemetry") {
        None => failures.push("committed report lacks the \"telemetry\" block".to_string()),
        Some(block) => {
            let get = |key: &str| block.get(key).and_then(Json::as_f64);
            let server_total = get("server_total").unwrap_or(-1.0);
            let client_total = get("client_total").unwrap_or(-2.0);
            if server_total < 0.0 || server_total != client_total {
                failures.push(format!(
                    "committed telemetry block disagrees on totals: \
                     server {server_total} vs client {client_total}"
                ));
            }
            let server_p95 = get("server_p95_ns").unwrap_or(f64::INFINITY);
            let client_p95 = get("client_p95_ns").unwrap_or(0.0);
            if server_p95 > client_p95 {
                failures.push(format!(
                    "committed telemetry block disagrees on p95: server {server_p95:.0} ns \
                     exceeds client {client_p95:.0} ns"
                ));
            }
            println!(
                "recorded telemetry cross-check: {server_total} requests, \
                 server p95 {:.3} ms <= client p95 {:.3} ms",
                server_p95 / 1e6,
                client_p95 / 1e6
            );
        }
    }
}
