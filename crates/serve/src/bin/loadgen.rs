//! Load generator for the serving layer.
//!
//! Drives an in-process server over loopback in two phases:
//!
//! 1. **Steady** — N client threads issue a seeded query mix against a
//!    generously provisioned server; asserts zero errors, zero shed
//!    requests, and a warm cache (hit-rate > 0), and reports p50/p95/max
//!    latency plus throughput.
//! 2. **Overload** — a deliberately starved server (one worker, tiny
//!    queue, artificial compute delay) under uncacheable unique-budget
//!    queries; asserts the bounded queue sheds with typed `Overloaded`
//!    replies and every request still gets *an* answer (no hangs).
//!
//! Results land in `results/BENCH_serve.json` and the run is recorded in
//! `results/MANIFEST.json` through the provenance harness. Exits nonzero
//! on any assertion failure.
//!
//! Usage: `loadgen [--smoke] [--clients N] [--requests N] [--workers N]
//! [--seed N] [--mode open|closed]`

use mcdvfs_bench::quickbench::{BenchReport, BenchStats};
use mcdvfs_bench::{results_dir, Harness};
use mcdvfs_core::{InefficiencyBudget, SweepEngine};
use mcdvfs_obs::{duration_edges_ns, Histogram};
use mcdvfs_serve::{Client, Request, Response, ServeState, Server, ServerConfig, ServerHandle};
use mcdvfs_sim::System;
use mcdvfs_types::{FrequencyGrid, SplitMix64};
use mcdvfs_workloads::Benchmark;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Parsed command line.
struct Args {
    clients: usize,
    requests: usize,
    workers: usize,
    seed: u64,
    open_loop: bool,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut args = Args {
            clients: 4,
            requests: 200,
            workers: 4,
            seed: 0x5eed,
            open_loop: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--smoke" => {
                    args.clients = 2;
                    args.requests = 40;
                }
                "--clients" => args.clients = parse_num(&value("--clients")?)?,
                "--requests" => args.requests = parse_num(&value("--requests")?)?,
                "--workers" => args.workers = parse_num(&value("--workers")?)?,
                "--seed" => args.seed = parse_num(&value("--seed")?)? as u64,
                "--mode" => {
                    args.open_loop = match value("--mode")?.as_str() {
                        "open" => true,
                        "closed" => false,
                        other => return Err(format!("unknown mode {other:?}")),
                    }
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(args)
    }
}

fn parse_num(text: &str) -> Result<usize, String> {
    text.parse().map_err(|_| format!("invalid number {text:?}"))
}

/// What one client thread observed.
#[derive(Default)]
struct ClientTally {
    latency: Option<Histogram>,
    ok: u64,
    overloaded: u64,
    errors: u64,
}

impl ClientTally {
    fn absorb(&mut self, other: ClientTally) {
        match (&mut self.latency, other.latency) {
            (Some(mine), Some(theirs)) => mine.merge(&theirs),
            (mine @ None, theirs) => *mine = theirs,
            _ => {}
        }
        self.ok += other.ok;
        self.overloaded += other.overloaded;
        self.errors += other.errors;
    }
}

/// The steady-phase query mix, reproducible from one seed.
fn pick_query(rng: &mut SplitMix64) -> Request {
    let budgets = [
        Some(1.0),
        Some(1.1),
        Some(1.3),
        Some(1.6),
        None, // unconstrained
    ];
    let budget = match budgets[rng.range_usize(0, budgets.len())] {
        Some(b) => InefficiencyBudget::bounded(b).expect("mix budgets are valid"),
        None => InefficiencyBudget::Unconstrained,
    };
    let thresholds = [0.01, 0.03, 0.05];
    let threshold = thresholds[rng.range_usize(0, thresholds.len())];
    match rng.range_usize(0, 6) {
        0 | 1 => Request::OptimalSetting { budget },
        2 => Request::Cluster { budget, threshold },
        3 => Request::StableRegions { budget, threshold },
        4 => Request::GovernedReplay {
            governor: if rng.next_u64().is_multiple_of(2) {
                "ideal"
            } else {
                "paper"
            }
            .to_string(),
            budget,
        },
        _ => Request::Health,
    }
}

fn run_clients(
    addr: SocketAddr,
    clients: usize,
    make_requests: impl Fn(usize) -> Vec<Request> + Send + Sync,
    interarrival: Option<Duration>,
) -> ClientTally {
    let make_requests = &make_requests;
    let mut total = ClientTally::default();
    thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut tally = ClientTally {
                        latency: Some(Histogram::new(duration_edges_ns())),
                        ..ClientTally::default()
                    };
                    let Ok(mut client) = Client::connect(addr) else {
                        tally.errors += 1;
                        return tally;
                    };
                    for request in make_requests(c) {
                        if let Some(gap) = interarrival {
                            thread::sleep(gap);
                        }
                        let t0 = Instant::now();
                        match client.request(&request) {
                            Ok(Response::Overloaded) => tally.overloaded += 1,
                            Ok(Response::Error(_)) | Err(_) => tally.errors += 1,
                            Ok(_) => {
                                tally.ok += 1;
                                if let Some(h) = &mut tally.latency {
                                    h.add(t0.elapsed().as_nanos() as f64);
                                }
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        for handle in handles {
            total.absorb(handle.join().expect("client thread panicked"));
        }
    });
    total
}

fn start_server(state: ServeState, config: ServerConfig) -> ServerHandle {
    Server::start("127.0.0.1:0", state, config).expect("loopback bind")
}

fn build_state(samples: usize) -> ServeState {
    let trace = Benchmark::Gobmk.trace().window(0, samples);
    let engine = SweepEngine::characterize(
        &System::galaxy_nexus_class(),
        &trace,
        FrequencyGrid::coarse(),
    );
    ServeState::new(engine, trace)
}

fn main() {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("loadgen: {message}");
            std::process::exit(2);
        }
    };
    let mut harness = Harness::new("loadgen");
    let mut failures: Vec<String> = Vec::new();

    // ---- Steady phase -----------------------------------------------------
    let state = build_state(40).with_profiler(Arc::clone(harness.profiler()));
    let server = start_server(
        state,
        ServerConfig {
            workers: args.workers,
            queue_bound: 128,
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();
    let seed = args.seed;
    let per_client = args.requests;
    let t0 = Instant::now();
    let steady = run_clients(
        addr,
        args.clients,
        |c| {
            let mut rng = SplitMix64::new(seed ^ (c as u64).wrapping_mul(0x9e37_79b9));
            (0..per_client).map(|_| pick_query(&mut rng)).collect()
        },
        args.open_loop.then_some(Duration::from_millis(2)),
    );
    let elapsed = t0.elapsed();

    // Stats over the live server, before shutdown.
    let stats = Client::connect(addr)
        .and_then(|mut c| c.request(&Request::Stats))
        .ok();
    let metrics = server.shutdown();

    let issued = (args.clients * per_client) as u64;
    let answered = steady.ok + steady.overloaded + steady.errors;
    if answered != issued {
        failures.push(format!("steady: {answered}/{issued} requests answered"));
    }
    if steady.errors > 0 {
        failures.push(format!("steady: {} error replies", steady.errors));
    }
    if steady.overloaded > 0 {
        failures.push(format!(
            "steady: {} shed requests at default provisioning",
            steady.overloaded
        ));
    }
    let cache_hits = metrics.counter("cache.hit");
    if cache_hits == 0 {
        failures.push("steady: cache hit-rate is zero".to_string());
    }
    let Some(Response::Stats(wire_stats)) = stats else {
        failures.push("steady: stats query failed".to_string());
        std::process::exit(report(&mut harness, &failures, None, None, 0.0, &args));
    };
    if wire_stats.protocol_errors > 0 {
        failures.push(format!(
            "steady: server saw {} protocol errors",
            wire_stats.protocol_errors
        ));
    }

    let steady_stats = steady.latency.as_ref().and_then(BenchStats::from_histogram);
    let throughput = steady.ok as f64 / elapsed.as_secs_f64();
    let hit_rate = cache_hits as f64 / (cache_hits + metrics.counter("cache.miss")).max(1) as f64;
    println!(
        "steady: {} ok / {} issued over {:.2}s — {:.0} req/s, cache hit-rate {:.2}",
        steady.ok,
        issued,
        elapsed.as_secs_f64(),
        throughput,
        hit_rate,
    );

    // ---- Overload phase ---------------------------------------------------
    // One slow worker, a two-slot queue, and unique budgets per request so
    // the cache cannot absorb the burst: the bounded queue must shed.
    let overload_server = start_server(
        build_state(10),
        ServerConfig {
            workers: 1,
            queue_bound: 2,
            compute_delay: Duration::from_millis(20),
            ..ServerConfig::default()
        },
    );
    let overload_addr = overload_server.addr();
    let overload = run_clients(
        overload_addr,
        6,
        |c| {
            (0..30)
                .map(|i| Request::OptimalSetting {
                    budget: InefficiencyBudget::bounded(1.0 + (c * 1000 + i + 1) as f64 * 1e-7)
                        .expect("overload budgets are valid"),
                })
                .collect()
        },
        None,
    );
    let overload_metrics = overload_server.shutdown();
    let overload_issued = 6 * 30_u64;
    let overload_answered = overload.ok + overload.overloaded + overload.errors;
    if overload_answered != overload_issued {
        failures.push(format!(
            "overload: {overload_answered}/{overload_issued} requests answered (hang?)"
        ));
    }
    if overload.errors > 0 {
        failures.push(format!("overload: {} error replies", overload.errors));
    }
    if overload.overloaded == 0 {
        failures.push("overload: queue never shed — backpressure untested".to_string());
    }
    println!(
        "overload: {} ok, {} shed of {} issued (server counted {})",
        overload.ok,
        overload.overloaded,
        overload_issued,
        overload_metrics.counter("overloaded"),
    );

    let code = report(
        &mut harness,
        &failures,
        steady_stats,
        Some((steady.ok, steady.overloaded, overload.overloaded)),
        throughput,
        &args,
    );
    std::process::exit(code);
}

/// Writes the bench JSON, records provenance, prints failures; returns
/// the process exit code.
fn report(
    harness: &mut Harness,
    failures: &[String],
    steady: Option<BenchStats>,
    counts: Option<(u64, u64, u64)>,
    throughput: f64,
    args: &Args,
) -> i32 {
    let mut bench = BenchReport::new("mcdvfs/serve-loadgen-v1");
    if let Some(stats) = steady {
        bench.entry("steady.request_latency", stats);
    }
    let path = results_dir().join("BENCH_serve.json");
    harness.note("clients", args.clients);
    harness.note("requests_per_client", args.requests);
    harness.note("workers", args.workers);
    harness.note("seed", args.seed);
    harness.note("mode", if args.open_loop { "open" } else { "closed" });
    harness.note("throughput_rps", format!("{throughput:.0}"));
    if let Some((ok, steady_shed, overload_shed)) = counts {
        harness.note("steady_ok", ok);
        harness.note("steady_shed", steady_shed);
        harness.note("overload_shed", overload_shed);
    }
    match bench.write_json(&path) {
        Ok(()) => {
            println!("[bench written to {}]", path.display());
            harness.record_file(&path);
        }
        Err(e) => eprintln!("[warning: could not write {}: {e}]", path.display()),
    }
    harness.finish();
    if failures.is_empty() {
        println!("loadgen: all assertions passed");
        0
    } else {
        for failure in failures {
            eprintln!("loadgen FAILURE: {failure}");
        }
        1
    }
}
