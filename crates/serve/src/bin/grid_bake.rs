//! Offline snapshot baking for the serving fleet.
//!
//! Characterizes every registered tenant (the default gobmk engine plus
//! the three named loadgen tenants) once, persists each grid as a
//! content-addressed snapshot under `results/store/`, and records the
//! first-touch index entries so a server pointed at the store
//! warm-starts all four without paying characterization cost. This is
//! the "bake once, ship many" half of the warm-start story: run
//! `grid_bake` on a build machine, ship `results/store/` to serving
//! nodes, and every cold process start becomes a snapshot load.
//!
//! Each bake round-trip-verifies its snapshot through
//! [`SweepEngine::warm_start`] (decode + checksum + fingerprint
//! re-derivation — bit-identical by construction), then runs the
//! size-bounded GC with the freshly baked fingerprints and any
//! manifest-pinned snapshots protected. A deterministic summary lands
//! in `results/STORE_bake.json` and is recorded in
//! `results/MANIFEST.json` with one `pin.<tenant>` config key per
//! snapshot, which is exactly what [`mcdvfs_store::manifest_pins`]
//! reads back to keep GC away from fleet-critical snapshots.
//!
//! ```text
//! cargo run --release -p mcdvfs-serve --bin grid_bake            # full traces
//! cargo run --release -p mcdvfs-serve --bin grid_bake -- --smoke # CI: temp store
//! ```

use mcdvfs_bench::{results_dir, Harness, Json};
use mcdvfs_core::SweepEngine;
use mcdvfs_serve::TenantSpec;
use mcdvfs_sim::System;
use mcdvfs_store::{manifest_pins, SnapshotStore};
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Benchmark;

/// Every tenant the serving layer registers: the default engine's
/// workload plus the named tenants `loadgen` serves (`build_state`).
const TENANTS: [(&str, Benchmark); 4] = [
    ("gobmk", Benchmark::Gobmk),
    ("bzip2", Benchmark::Bzip2),
    ("gcc", Benchmark::Gcc),
    ("perlbench", Benchmark::Perlbench),
];

/// GC budget for the baked store — generous next to the ~90 KiB a
/// full-trace coarse-grid snapshot occupies, so a bake never evicts its
/// own output, but bounded so abandoned fingerprints age out.
const GC_MAX_BYTES: u64 = 64 * 1024 * 1024;

/// Samples per tenant in `--smoke` mode (full traces otherwise).
const SMOKE_SAMPLES: usize = 32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // --smoke bakes windowed traces into a throwaway store: it proves
    // the bake → warm-start loop end to end without touching the
    // committed results tree.
    let store_dir = if smoke {
        std::env::temp_dir().join(format!("mcdvfs-grid-bake-{}", std::process::id()))
    } else {
        SnapshotStore::default_dir()
    };
    let store = SnapshotStore::open(&store_dir)?;
    println!(
        "grid_bake: {} store at {}",
        if smoke { "smoke" } else { "fleet" },
        store.dir().display()
    );

    let system = System::galaxy_nexus_class();
    let mut harness = Harness::new("grid_bake");
    harness.note("grid", "coarse-70");
    harness.note(
        "tenants",
        TENANTS
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join(","),
    );

    let mut baked: Vec<(&str, u64, u64, u64, usize)> = Vec::new();
    for (name, benchmark) in TENANTS {
        let trace = if smoke {
            benchmark.trace().window(0, SMOKE_SAMPLES)
        } else {
            benchmark.trace()
        };
        let samples = trace.len();
        let spec = TenantSpec::new(system.clone(), trace, FrequencyGrid::coarse());
        let (fingerprint, bytes) = spec.bake(name, &store)?;

        // Round-trip proof: the snapshot must load, checksum, and
        // re-derive the identical fingerprint — the same path a warm
        // server takes on first touch.
        let (engine, _) = SweepEngine::warm_start(&store, fingerprint, 1)?
            .ok_or_else(|| format!("{name}: baked snapshot not loadable"))?;
        assert_eq!(
            engine.data().fingerprint(),
            fingerprint,
            "{name}: warm-started grid drifted from its snapshot"
        );
        println!(
            "baked {name:<10} {fingerprint:016x}  {samples:>5} samples x {} settings  {bytes:>7} bytes",
            engine.data().n_settings(),
        );
        harness.note(&format!("pin.{name}"), format!("{fingerprint:016x}"));
        baked.push((name, fingerprint, spec.spec_key(name), bytes, samples));
    }

    // GC: evict stale fingerprints oldest-first, never the snapshots
    // just baked nor anything a live manifest entry pins.
    let mut pinned: std::collections::HashSet<u64> =
        baked.iter().map(|&(_, fp, _, _, _)| fp).collect();
    if !smoke {
        let manifest_path = results_dir().join("MANIFEST.json");
        if let Ok(text) = std::fs::read_to_string(&manifest_path) {
            pinned.extend(manifest_pins(&text));
        }
    }
    let gc = store.gc(GC_MAX_BYTES, &pinned)?;
    println!(
        "gc: evicted {} snapshot(s), freed {} bytes, {} bytes resident",
        gc.evicted.len(),
        gc.bytes_freed,
        gc.bytes_remaining
    );

    if smoke {
        let _ = std::fs::remove_dir_all(&store_dir);
        println!("grid_bake OK (smoke store removed)");
        return Ok(());
    }

    // Deterministic summary artifact (no timestamps): same inputs,
    // identical bytes. Snapshots themselves stay out of the manifest —
    // they live under results/store/ and are pinned via config keys.
    let tenants_json = Json::Arr(
        baked
            .iter()
            .map(|&(name, fp, spec_key, bytes, samples)| {
                Json::Obj(vec![
                    ("name".to_string(), Json::Str(name.to_string())),
                    ("fingerprint".to_string(), Json::Str(format!("{fp:016x}"))),
                    (
                        "spec_key".to_string(),
                        Json::Str(format!("{spec_key:016x}")),
                    ),
                    ("bytes".to_string(), Json::Num(bytes as f64)),
                    ("samples".to_string(), Json::Num(samples as f64)),
                ])
            })
            .collect(),
    );
    let doc = Json::Obj(vec![
        (
            "schema".to_string(),
            Json::Str("mcdvfs/store-bake-v1".to_string()),
        ),
        ("store_dir".to_string(), Json::Str("store".to_string())),
        ("tenants".to_string(), tenants_json),
        (
            "gc".to_string(),
            Json::Obj(vec![
                ("max_bytes".to_string(), Json::Num(GC_MAX_BYTES as f64)),
                ("evicted".to_string(), Json::Num(gc.evicted.len() as f64)),
                (
                    "bytes_remaining".to_string(),
                    Json::Num(gc.bytes_remaining as f64),
                ),
            ]),
        ),
    ]);
    let report_path = results_dir().join("STORE_bake.json");
    std::fs::write(&report_path, doc.render())?;
    harness.record_file(&report_path);
    println!("wrote {}", report_path.display());
    harness.finish();
    Ok(())
}
