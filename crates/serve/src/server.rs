//! The multi-threaded TCP server.
//!
//! # Architecture
//!
//! One acceptor thread hands each connection to its own reader thread.
//! Reader threads decode frames, answer `Health`/`Stats` and cache hits
//! inline, and push everything else onto a **bounded** MPSC queue feeding
//! a fixed pool of compute workers. A full queue sheds the request with a
//! typed [`Response::Overloaded`] reply — the client always gets an
//! answer, never an unbounded wait.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] sets the stop flag, wakes the acceptor with
//! a loopback connect, then joins acceptor → connections → workers. The
//! join order drains in-flight work: a connection finishes (and replies
//! to) its current request before exiting, workers keep consuming until
//! every queue sender is gone, and only then do they observe disconnect
//! and stop. Per-worker [`MetricSet`]s merge into one at join, which is
//! absorbed into the profiler and returned.
//!
//! # Observability
//!
//! Request phases trace as profiler spans (`decode` in the reader,
//! `dispatch`/`compute`/`encode` in the worker). Counters, the
//! queue-depth max gauge, and latency histograms accumulate per worker
//! slot plus one shared reader-side set; `Stats` renders a merged
//! snapshot at any moment.

use crate::cache::{CacheKey, ShardedLru};
use crate::protocol::{
    write_frame, Request, Response, WireChoice, WireCluster, WireHealth, WireRegion, WireReport,
    WireStats, MAX_FRAME_BYTES,
};
use mcdvfs_core::{GovernedRun, RunReport, SweepEngine};
use mcdvfs_obs::{MetricSet, Profiler};
use mcdvfs_sim::System;
use mcdvfs_types::fnv1a64;
use mcdvfs_workloads::SampleTrace;
use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often blocked reads wake to check the stop flag and idle deadline.
const POLL_SLICE: Duration = Duration::from_millis(100);

/// How long an idle worker waits for work before re-checking for
/// disconnect.
const WORKER_POLL: Duration = Duration::from_millis(5);

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Compute worker threads.
    pub workers: usize,
    /// Bounded queue capacity; a full queue sheds with `Overloaded`.
    pub queue_bound: usize,
    /// Response cache capacity in entries.
    pub cache_capacity: usize,
    /// Independently locked cache shards.
    pub cache_shards: usize,
    /// Close a connection after this long without receiving a byte.
    pub idle_timeout: Duration,
    /// Per-connection socket write deadline.
    pub write_timeout: Duration,
    /// How long a reader waits for its compute reply before erroring.
    pub reply_timeout: Duration,
    /// Artificial per-request compute sleep — zero in production; the
    /// load generator's overload phase raises it to make queue pressure
    /// deterministic.
    pub compute_delay: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_bound: 64,
            cache_capacity: 256,
            cache_shards: 8,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            reply_timeout: Duration::from_secs(30),
            compute_delay: Duration::ZERO,
        }
    }
}

/// The data a server answers queries against.
#[derive(Debug)]
pub struct ServeState {
    engine: SweepEngine,
    trace: SampleTrace,
    fingerprint: u64,
    profiler: Arc<Profiler>,
}

impl ServeState {
    /// Wraps an engine and the trace its characterization came from.
    ///
    /// # Panics
    ///
    /// Panics when `trace` and the engine's characterization disagree on
    /// sample count (governed replays step the two in lockstep).
    #[must_use]
    pub fn new(engine: SweepEngine, trace: SampleTrace) -> Self {
        assert_eq!(
            trace.len(),
            engine.data().n_samples(),
            "trace and characterization must cover the same samples"
        );
        let fingerprint = engine.data().fingerprint();
        Self {
            engine,
            trace,
            fingerprint,
            profiler: Arc::new(Profiler::disabled()),
        }
    }

    /// Routes request-phase spans and merged metrics into `profiler`.
    #[must_use]
    pub fn with_profiler(mut self, profiler: Arc<Profiler>) -> Self {
        self.profiler = profiler;
        self
    }

    /// The served engine.
    #[must_use]
    pub fn engine(&self) -> &SweepEngine {
        &self.engine
    }

    /// Fingerprint of the served characterization.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Applies an incremental characterization update for the `dirty`
    /// sample indices (see [`SweepEngine::recharacterize`]), replaces the
    /// replay trace with `trace`, and refreshes the served fingerprint.
    ///
    /// Only the dirty rows are re-simulated, and the new fingerprint
    /// folds the grid's cached per-row hashes — a warm state picks up a
    /// few changed samples without recomputing over the whole arena.
    /// [`Server::start`] takes the state by value, so this runs before a
    /// (re)start, blue-green style: a running server's replies — and its
    /// cache entries, which key on the fingerprint — stay pinned to the
    /// characterization they were computed against.
    ///
    /// # Panics
    ///
    /// Panics when `trace` and the characterization disagree on sample
    /// count, or when a dirty index is out of range.
    pub fn recharacterize(&mut self, system: &System, trace: SampleTrace, dirty: &[usize]) {
        self.engine.recharacterize(system, &trace, dirty);
        self.trace = trace;
        self.fingerprint = self.engine.data().fingerprint();
    }
}

/// One queued compute request.
struct Job {
    request: Request,
    key: CacheKey,
    enqueued: Instant,
    reply: SyncSender<Arc<String>>,
}

/// State shared by every server thread.
struct Shared {
    state: ServeState,
    config: ServerConfig,
    cache: ShardedLru,
    shutdown: AtomicBool,
    queue_depth: AtomicUsize,
    worker_metrics: Vec<Mutex<MetricSet>>,
    reader_metrics: Mutex<MetricSet>,
}

impl Shared {
    /// Merges every slot into one snapshot — the `Stats` reply body and
    /// the shutdown return value.
    fn snapshot(&self) -> MetricSet {
        let mut merged = self
            .reader_metrics
            .lock()
            .expect("reader metrics poisoned")
            .clone();
        for slot in &self.worker_metrics {
            merged.merge(&slot.lock().expect("worker metrics poisoned"));
        }
        merged
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// The server entry point; [`start`](Server::start) returns a handle.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), spawns the worker
    /// pool and acceptor, and returns the running server's handle.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(
        addr: impl ToSocketAddrs,
        state: ServeState,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            cache: ShardedLru::new(config.cache_capacity, config.cache_shards),
            shutdown: AtomicBool::new(false),
            queue_depth: AtomicUsize::new(0),
            worker_metrics: (0..workers).map(|_| Mutex::new(MetricSet::new())).collect(),
            reader_metrics: Mutex::new(MetricSet::new()),
            state,
            config,
        });

        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(shared.config.queue_bound.max(1));
        let job_rx = Arc::new(Mutex::new(job_rx));
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&job_rx);
                thread::spawn(move || worker_loop(&shared, &rx, slot))
            })
            .collect();

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            thread::spawn(move || accept_loop(&listener, &shared, &job_tx, &conns))
        };

        Ok(ServerHandle {
            addr: local,
            shared,
            accept: Some(accept),
            workers: worker_handles,
            conns,
        })
    }
}

/// A running server; dropping without [`shutdown`](Self::shutdown) leaks
/// the threads until process exit.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("config", &self.config)
            .field("queue_depth", &self.queue_depth)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A merged metric snapshot of the running server.
    #[must_use]
    pub fn metrics(&self) -> MetricSet {
        self.shared.snapshot()
    }

    /// Stops accepting, drains in-flight requests, joins every thread,
    /// and returns the merged per-worker metrics (also absorbed into the
    /// state's profiler).
    #[must_use]
    pub fn shutdown(mut self) -> MetricSet {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().expect("connection list poisoned"));
        for conn in conns {
            let _ = conn.join();
        }
        // Every queue sender is gone now; workers drain what remains and
        // observe the disconnect.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let merged = self.shared.snapshot();
        self.shared.state.profiler.absorb(merged.clone());
        merged
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    job_tx: &SyncSender<Job>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stopping() {
                    return;
                }
                let shared = Arc::clone(shared);
                let tx = job_tx.clone();
                let handle = thread::spawn(move || connection_loop(stream, &shared, &tx));
                let mut conns = conns.lock().expect("connection list poisoned");
                // Reap finished connection threads so a long-running
                // server does not accumulate JoinHandles for every
                // connection it ever accepted.
                let mut i = 0;
                while i < conns.len() {
                    if conns[i].is_finished() {
                        let _ = conns.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
                conns.push(handle);
            }
            Err(_) => {
                if shared.stopping() {
                    return;
                }
            }
        }
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>, job_tx: &SyncSender<Job>) {
    let _ = stream.set_read_timeout(Some(POLL_SLICE));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        if shared.stopping() {
            return;
        }
        let payload = match read_frame_polled(&mut reader, shared) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Framing is broken; reply once and drop the connection.
                record(&shared.reader_metrics, |m| m.incr("protocol.errors", 1));
                let reply = Response::Error(e.to_string()).encode();
                let _ = write_frame(&mut writer, &reply);
                return;
            }
            Err(_) => return,
        };
        let started = Instant::now();
        let reply = handle_request(&payload, started, shared, job_tx);
        record(&shared.reader_metrics, |m| {
            m.observe_duration_ns("latency.request_ns", started.elapsed().as_nanos() as f64);
        });
        if write_frame(&mut writer, &reply).is_err() {
            return;
        }
    }
}

/// Reads one frame, waking every [`POLL_SLICE`] to honor shutdown and the
/// idle deadline. Partial frames survive timeouts: bytes accumulate in a
/// local buffer across poll ticks, never in a lossy intermediate.
fn read_frame_polled(
    reader: &mut BufReader<TcpStream>,
    shared: &Shared,
) -> io::Result<Option<String>> {
    let mut acc: Vec<u8> = Vec::new();
    // None while reading the length header; Some(n) while reading the
    // n-byte body plus terminator.
    let mut body_len: Option<usize> = None;
    let mut last_byte = Instant::now();
    loop {
        if shared.stopping() {
            return Ok(None);
        }
        if last_byte.elapsed() > shared.config.idle_timeout {
            return Ok(None);
        }
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            // Clean EOF only between frames.
            return if acc.is_empty() && body_len.is_none() {
                Ok(None)
            } else {
                Err(bad("truncated frame"))
            };
        }
        last_byte = Instant::now();
        match body_len {
            None => {
                let newline = available.iter().position(|&b| b == b'\n');
                let take = newline.map_or(available.len(), |i| i + 1);
                acc.extend_from_slice(&available[..take]);
                reader.consume(take);
                if acc.len() > 32 {
                    return Err(bad("oversized frame header"));
                }
                if newline.is_some() {
                    let header = std::str::from_utf8(&acc[..acc.len() - 1])
                        .map_err(|_| bad("frame header is not UTF-8"))?;
                    let len: usize = header
                        .trim()
                        .parse()
                        .map_err(|_| bad("invalid frame length"))?;
                    if len > MAX_FRAME_BYTES {
                        return Err(bad("frame exceeds size cap"));
                    }
                    acc.clear();
                    body_len = Some(len);
                }
            }
            Some(len) => {
                let want = len + 1 - acc.len();
                let take = want.min(available.len());
                acc.extend_from_slice(&available[..take]);
                reader.consume(take);
                if acc.len() == len + 1 {
                    if acc.pop() != Some(b'\n') {
                        return Err(bad("frame missing terminator"));
                    }
                    return String::from_utf8(acc)
                        .map(Some)
                        .map_err(|_| bad("frame is not UTF-8"));
                }
            }
        }
    }
}

fn bad(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

fn record(slot: &Mutex<MetricSet>, f: impl FnOnce(&mut MetricSet)) {
    f(&mut slot.lock().expect("metric slot poisoned"));
}

/// Decodes and answers one request from a reader thread. Cache hits,
/// `Stats`, `Health`, and shed requests reply inline; everything else
/// round-trips through the worker queue.
fn handle_request(
    payload: &str,
    started: Instant,
    shared: &Arc<Shared>,
    job_tx: &SyncSender<Job>,
) -> String {
    let p = &shared.state.profiler;
    let request = {
        let _span = p.span("decode");
        Request::decode(payload)
    };
    let request = match request {
        Ok(request) => request,
        Err(message) => {
            record(&shared.reader_metrics, |m| {
                m.incr("protocol.errors", 1);
            });
            return Response::Error(message).encode();
        }
    };
    record(&shared.reader_metrics, |m| {
        m.incr("requests.total", 1);
        m.incr(&format!("requests.{}", request.kind()), 1);
    });
    match &request {
        Request::Health => {
            let data = shared.state.engine.data();
            return Response::Health(WireHealth {
                status: "ok".to_string(),
                workload: data.name().to_string(),
                samples: data.n_samples(),
                settings: data.n_settings(),
                fingerprint: format!("{:016x}", shared.state.fingerprint),
                workers: shared.worker_metrics.len(),
            })
            .encode();
        }
        Request::Stats => {
            let snapshot = shared.snapshot();
            let counter = |name: &str| snapshot.counter(name);
            return Response::Stats(WireStats {
                requests: counter("requests.total"),
                cache_hits: counter("cache.hit"),
                cache_misses: counter("cache.miss"),
                overloaded: counter("overloaded"),
                protocol_errors: counter("protocol.errors"),
                queue_depth_max: snapshot.gauge("queue.depth_max").unwrap_or(0.0) as u64,
                rendered: snapshot.render(),
            })
            .encode();
        }
        _ => {}
    }
    // Every variant that falls through the inline match above has a
    // cache key today; if dispatch and `cache_key` ever disagree (a new
    // request kind wired into one but not the other), a typed reply is
    // the right failure mode — not a thread panic.
    let Some(key) = cache_key(shared.state.fingerprint, &request) else {
        record(&shared.reader_metrics, |m| m.incr("internal.errors", 1));
        return Response::Error(format!(
            "internal error: no cache key for {:?} dispatch",
            request.kind()
        ))
        .encode();
    };
    if let Some(hit) = shared.cache.get(&key) {
        record(&shared.reader_metrics, |m| m.incr("cache.hit", 1));
        return String::clone(&hit);
    }
    let (reply_tx, reply_rx) = mpsc::sync_channel::<Arc<String>>(1);
    let job = Job {
        request,
        key,
        enqueued: started,
        reply: reply_tx,
    };
    // Count the slot before enqueueing so a fast worker's decrement can
    // never race the increment below zero; undo on any failure to queue.
    let depth = shared.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
    match job_tx.try_send(job) {
        Ok(()) => {
            record(&shared.reader_metrics, |m| {
                m.gauge_max("queue.depth_max", depth as f64);
            });
        }
        Err(TrySendError::Full(_)) => {
            shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
            record(&shared.reader_metrics, |m| m.incr("overloaded", 1));
            return Response::Overloaded.encode();
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
            return Response::Error("server is shutting down".to_string()).encode();
        }
    }
    match reply_rx.recv_timeout(shared.config.reply_timeout) {
        Ok(reply) => String::clone(&reply),
        Err(_) => Response::Error("compute timed out".to_string()).encode(),
    }
}

/// Maps a compute request onto its cache identity; `None` for the
/// uncacheable `Stats`/`Health`.
fn cache_key(fingerprint: u64, request: &Request) -> Option<CacheKey> {
    let budget_bits =
        |budget: &mcdvfs_core::InefficiencyBudget| budget.bound().map_or(u64::MAX, f64::to_bits);
    let (kind, a, b, c) = match request {
        Request::OptimalSetting { budget } => (0u8, budget_bits(budget), 0, 0),
        Request::Cluster { budget, threshold } => (1, budget_bits(budget), threshold.to_bits(), 0),
        Request::StableRegions { budget, threshold } => {
            (2, budget_bits(budget), threshold.to_bits(), 0)
        }
        Request::GovernedReplay { governor, budget } => {
            (3, budget_bits(budget), 0, fnv1a64(governor.as_bytes()))
        }
        Request::Stats | Request::Health => return None,
    };
    Some(CacheKey {
        fingerprint,
        kind,
        budget_bits: a,
        threshold_bits: b,
        governor_hash: c,
    })
}

fn worker_loop(shared: &Arc<Shared>, rx: &Arc<Mutex<Receiver<Job>>>, slot: usize) {
    loop {
        let job = {
            let guard = rx.lock().expect("job queue poisoned");
            match guard.recv_timeout(WORKER_POLL) {
                Ok(job) => job,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let p = &shared.state.profiler;
        let queued_ns = job.enqueued.elapsed().as_nanos() as f64;
        {
            let _span = p.span("dispatch");
            record(&shared.worker_metrics[slot], |m| {
                m.observe_duration_ns("latency.queue_ns", queued_ns);
            });
        }
        if !shared.config.compute_delay.is_zero() {
            thread::sleep(shared.config.compute_delay);
        }
        let t0 = Instant::now();
        let response = {
            let _span = p.span("compute");
            compute(shared, &job.request)
        };
        let encoded = {
            let _span = p.span("encode");
            Arc::new(response.encode())
        };
        record(&shared.worker_metrics[slot], |m| {
            m.observe_duration_ns("latency.compute_ns", t0.elapsed().as_nanos() as f64);
            m.incr("cache.miss", 1);
        });
        // Errors are not cached: a later identical request may be valid
        // context (e.g. after a config change) and they are cheap.
        if !matches!(response, Response::Error(_)) {
            shared.cache.insert(job.key, Arc::clone(&encoded));
        }
        // The reader may have timed out and gone; nothing to do then.
        let _ = job.reply.send(encoded);
    }
}

/// Runs one compute query against the engine. Every arm is a thin
/// adapter over the deterministic `SweepEngine` entry points, so replies
/// are bit-identical to direct calls at any worker count.
fn compute(shared: &Shared, request: &Request) -> Response {
    let engine = &shared.state.engine;
    let data = engine.data();
    match request {
        Request::OptimalSetting { budget } => Response::OptimalSetting(
            engine
                .optimal_series(*budget)
                .iter()
                .map(|c| WireChoice {
                    sample: c.sample,
                    index: c.index,
                    cpu_mhz: c.setting.cpu.mhz(),
                    mem_mhz: c.setting.mem.mhz(),
                    time_s: c.time.value(),
                    energy_j: c.energy.value(),
                    inefficiency: c.inefficiency.value(),
                })
                .collect(),
        ),
        Request::Cluster { budget, threshold } => {
            match engine.cluster_detail(*budget, *threshold) {
                Ok(clusters) => Response::Cluster(
                    clusters
                        .iter()
                        .map(|c| WireCluster {
                            sample: c.sample,
                            optimal_index: c.optimal.index,
                            members: c.member_indices().to_vec(),
                            cpu_mhz: c.cpu_range_mhz(data),
                            mem_mhz: c.mem_range_mhz(data),
                        })
                        .collect(),
                ),
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Request::StableRegions { budget, threshold } => {
            match engine.stable_detail(*budget, *threshold) {
                Ok(regions) => Response::StableRegions(
                    regions
                        .iter()
                        .map(|r| {
                            let chosen = r.chosen_setting(data);
                            WireRegion {
                                start: r.start,
                                end: r.end,
                                chosen_index: r.chosen_index,
                                cpu_mhz: chosen.cpu.mhz(),
                                mem_mhz: chosen.mem.mhz(),
                                available: r.available_indices().to_vec(),
                            }
                        })
                        .collect(),
                ),
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Request::GovernedReplay { governor, budget } => {
            let runner = match governor.as_str() {
                "ideal" => GovernedRun::without_overheads(),
                "paper" => GovernedRun::with_paper_overheads(),
                other => {
                    return Response::Error(format!(
                        "unknown governor {other:?}; expected \"ideal\" or \"paper\""
                    ));
                }
            };
            let report = engine
                .governed_reports(&runner, &shared.state.trace, &[*budget])
                .pop()
                .expect("one budget yields one report");
            Response::GovernedReplay(wire_report(&report))
        }
        Request::Stats | Request::Health => {
            Response::Error("stats/health are answered inline".to_string())
        }
    }
}

fn wire_report(r: &RunReport) -> WireReport {
    WireReport {
        governor: r.governor.clone(),
        work_time_s: r.work_time.value(),
        work_energy_j: r.work_energy.value(),
        tuning_time_s: r.tuning_time.value(),
        tuning_energy_j: r.tuning_energy.value(),
        transition_time_s: r.transition_time.value(),
        transition_energy_j: r.transition_energy.value(),
        transitions: r.transitions,
        cpu_transitions: r.cpu_transitions,
        mem_transitions: r.mem_transitions,
        searches: r.searches,
        total_emin_j: r.total_emin.value(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdvfs_core::InefficiencyBudget;

    #[test]
    fn every_compute_kind_has_a_cache_key_and_inline_kinds_have_none() {
        let b = InefficiencyBudget::bounded(1.3).unwrap();
        let compute = [
            Request::OptimalSetting { budget: b },
            Request::Cluster {
                budget: b,
                threshold: 0.05,
            },
            Request::StableRegions {
                budget: b,
                threshold: 0.05,
            },
            Request::GovernedReplay {
                governor: "paper".to_string(),
                budget: b,
            },
        ];
        let mut kinds = std::collections::HashSet::new();
        for request in &compute {
            let key = cache_key(0xfeed, request)
                .unwrap_or_else(|| panic!("{} must be cacheable", request.kind()));
            assert_eq!(key.fingerprint, 0xfeed);
            assert!(kinds.insert(key.kind), "kind discriminants must differ");
        }
        // Inline-answered kinds carry no key; dispatch must never send
        // them to the compute path (the keyless fallback replies with a
        // typed internal error rather than panicking if it ever does).
        assert!(cache_key(0xfeed, &Request::Stats).is_none());
        assert!(cache_key(0xfeed, &Request::Health).is_none());
    }

    #[test]
    fn unconstrained_budget_key_cannot_collide_with_a_finite_one() {
        let finite = cache_key(
            1,
            &Request::OptimalSetting {
                budget: InefficiencyBudget::bounded(1.3).unwrap(),
            },
        )
        .unwrap();
        let unconstrained = cache_key(
            1,
            &Request::OptimalSetting {
                budget: InefficiencyBudget::Unconstrained,
            },
        )
        .unwrap();
        assert_eq!(unconstrained.budget_bits, u64::MAX);
        assert_ne!(finite.budget_bits, unconstrained.budget_bits);
    }
}
