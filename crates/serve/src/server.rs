//! Server assembly: configuration, served state, and lifecycle.
//!
//! # Architecture
//!
//! One reactor thread ([`reactor`](crate::reactor)) owns the listener
//! and every connection: nonblocking accept, per-connection read/write
//! buffers, idle/write/reply deadlines, frame parsing, and all inline
//! answers (health, stats, cache hits, typed errors, shed replies).
//! Compute requests route by workload to a [`ShardMap`] of per-tenant
//! engines ([`shard`](crate::shard)) — each shard has its own bounded
//! job queue, worker slice, and reply LRU, so tenants never serialize on
//! one another. A full shard queue sheds the request with a typed
//! [`Response::Overloaded`](crate::Response::Overloaded) reply — the
//! client always gets an answer, never an unbounded wait.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] sets the stop flag; the reactor stops
//! accepting, drains in-flight replies (bounded by the reply timeout),
//! flushes write buffers, and exits. Dropping the shard map disconnects
//! every job queue; workers finish what was already accepted and exit.
//! Merged metrics (reactor slot plus every shard's worker slots, live
//! and evicted) are absorbed into the profiler and returned.
//!
//! # Observability
//!
//! Request phases trace as profiler spans (`decode` in the reactor,
//! `dispatch`/`compute`/`encode` in the workers). Counters, the
//! queue-depth max gauge, and latency histograms accumulate per worker
//! slot plus one reactor-side set; `Stats` renders a merged snapshot at
//! any moment, plus per-shard rows (requests, cache hits/misses, queue
//! depth, pinning). With [`ServerConfig::telemetry`] on (the default),
//! every request additionally carries a
//! [`RequestTrace`](mcdvfs_obs::RequestTrace) stamped at each pipeline
//! stage and committed to a bounded flight ring, and the reactor folds
//! each reply into a ring of 1-second telemetry windows — both served
//! over the wire by the `telemetry` and `trace_dump` queries. Telemetry
//! off skips every trace allocation and window observation; replies are
//! bit-identical either way.

use crate::cache::CacheKey;
use crate::reactor::{self, Ctx};
use crate::shard::{Completion, ShardMap, TenantSpec};
use crate::telemetry::TelemetryCtx;
use mcdvfs_core::SweepEngine;
use mcdvfs_obs::{FlightRecorder, MetricSet, Profiler};
use mcdvfs_sim::System;
use mcdvfs_types::fnv1a64;
use mcdvfs_workloads::SampleTrace;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::protocol::Request;

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Compute worker threads per shard.
    pub workers: usize,
    /// Bounded per-shard queue capacity; a full queue sheds with
    /// `Overloaded`.
    pub queue_bound: usize,
    /// Response cache capacity in entries, per shard.
    pub cache_capacity: usize,
    /// Independently locked cache shards (within one engine shard's LRU).
    pub cache_shards: usize,
    /// Resident engine-shard ceiling; exceeding it evicts the
    /// least-recently-used unpinned shard (the default tenant is pinned).
    pub max_shards: usize,
    /// Close a connection after this long without receiving a byte.
    pub idle_timeout: Duration,
    /// Per-connection write-progress deadline.
    pub write_timeout: Duration,
    /// How long a connection waits for its compute reply before erroring.
    pub reply_timeout: Duration,
    /// Artificial per-request compute sleep — zero in production; the
    /// load generator raises it to make queue pressure and shard-level
    /// parallelism deterministic.
    pub compute_delay: Duration,
    /// Collect flight records, stage histograms, and 1-second telemetry
    /// windows. Off disables every trace allocation and window
    /// observation (the zero-overhead path); replies are bit-identical
    /// either way.
    pub telemetry: bool,
    /// Flight-recorder ring capacity (recent and slow rings each).
    pub flight_capacity: usize,
    /// Flights slower than this land in the slow-request log.
    pub slow_threshold: Duration,
    /// How many 1-second telemetry windows the ring retains.
    pub window_seconds: usize,
    /// Snapshot-store directory for tenant warm-starts. When set, lazy
    /// shard builds (first touch and rebuild-after-evict) try the store
    /// before characterizing, and cold characterizations are persisted
    /// back for the next process. `None` disables the store entirely.
    pub snapshot_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_bound: 64,
            cache_capacity: 256,
            cache_shards: 8,
            max_shards: 8,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            reply_timeout: Duration::from_secs(30),
            compute_delay: Duration::ZERO,
            telemetry: true,
            flight_capacity: 512,
            slow_threshold: Duration::from_millis(250),
            window_seconds: 64,
            snapshot_dir: None,
        }
    }
}

/// The data a server answers queries against: one default engine plus
/// lazily characterized named tenants.
#[derive(Debug)]
pub struct ServeState {
    engine: SweepEngine,
    trace: SampleTrace,
    fingerprint: u64,
    tenants: HashMap<String, TenantSpec>,
    profiler: Arc<Profiler>,
}

impl ServeState {
    /// Wraps an engine and the trace its characterization came from.
    ///
    /// # Panics
    ///
    /// Panics when `trace` and the engine's characterization disagree on
    /// sample count (governed replays step the two in lockstep).
    #[must_use]
    pub fn new(engine: SweepEngine, trace: SampleTrace) -> Self {
        assert_eq!(
            trace.len(),
            engine.data().n_samples(),
            "trace and characterization must cover the same samples"
        );
        let fingerprint = engine.data().fingerprint();
        Self {
            engine,
            trace,
            fingerprint,
            tenants: HashMap::new(),
            profiler: Arc::new(Profiler::disabled()),
        }
    }

    /// Registers a named tenant whose engine is characterized on first
    /// request (and re-characterized after an eviction). Requests address
    /// it with the top-level `"workload"` envelope member; requests
    /// without one go to the default engine.
    #[must_use]
    pub fn with_tenant(mut self, name: impl Into<String>, spec: TenantSpec) -> Self {
        self.tenants.insert(name.into(), spec);
        self
    }

    /// Routes request-phase spans and merged metrics into `profiler`.
    #[must_use]
    pub fn with_profiler(mut self, profiler: Arc<Profiler>) -> Self {
        self.profiler = profiler;
        self
    }

    /// The default served engine.
    #[must_use]
    pub fn engine(&self) -> &SweepEngine {
        &self.engine
    }

    /// Fingerprint of the default served characterization.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Applies an incremental characterization update for the `dirty`
    /// sample indices (see [`SweepEngine::recharacterize`]), replaces the
    /// replay trace with `trace`, and refreshes the served fingerprint.
    ///
    /// Only the dirty rows are re-simulated, and the new fingerprint
    /// folds the grid's cached per-row hashes — a warm state picks up a
    /// few changed samples without recomputing over the whole arena.
    /// [`Server::start`] takes the state by value, so this runs before a
    /// (re)start, blue-green style: a running server's replies — and its
    /// cache entries, which key on the fingerprint — stay pinned to the
    /// characterization they were computed against.
    ///
    /// # Panics
    ///
    /// Panics when `trace` and the characterization disagree on sample
    /// count, or when a dirty index is out of range.
    pub fn recharacterize(&mut self, system: &System, trace: SampleTrace, dirty: &[usize]) {
        self.engine.recharacterize(system, &trace, dirty);
        self.trace = trace;
        self.fingerprint = self.engine.data().fingerprint();
    }
}

/// The server entry point; [`start`](Server::start) returns a handle.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), builds the
    /// default tenant's shard, spawns the reactor, and returns the
    /// running server's handle.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(
        addr: impl ToSocketAddrs,
        state: ServeState,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let (completion_tx, completion_rx) = mpsc::channel::<Completion>();
        let profiler = Arc::clone(&state.profiler);
        let recorder = Arc::new(if config.telemetry {
            FlightRecorder::enabled(config.flight_capacity, config.slow_threshold)
        } else {
            FlightRecorder::disabled()
        });
        let map = Arc::new(ShardMap::new(
            state.engine,
            state.trace,
            state.tenants,
            completion_tx,
            &config,
            Arc::clone(&recorder),
            Arc::clone(&profiler),
        ));
        let metrics = Arc::new(Mutex::new(MetricSet::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let ctx = Ctx {
            map: Arc::clone(&map),
            metrics: Arc::clone(&metrics),
            profiler: Arc::clone(&profiler),
            tel: TelemetryCtx::new(recorder, config.window_seconds),
            config,
        };
        let reactor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || reactor::run(listener, completion_rx, ctx, shutdown))
        };
        Ok(ServerHandle {
            addr: local,
            map,
            metrics,
            profiler,
            shutdown,
            reactor: Some(reactor),
        })
    }
}

/// A running server; dropping without [`shutdown`](Self::shutdown) leaks
/// the threads until process exit.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    map: Arc<ShardMap>,
    metrics: Arc<Mutex<MetricSet>>,
    profiler: Arc<Profiler>,
    shutdown: Arc<AtomicBool>,
    reactor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A merged metric snapshot of the running server.
    #[must_use]
    pub fn metrics(&self) -> MetricSet {
        let mut merged = self
            .metrics
            .lock()
            .expect("reactor metrics poisoned")
            .clone();
        self.map.merge_metrics(&mut merged);
        merged
    }

    /// Stops accepting, drains in-flight requests, joins the reactor and
    /// every shard worker, and returns the merged metrics (also absorbed
    /// into the state's profiler).
    #[must_use]
    pub fn shutdown(mut self) -> MetricSet {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        // The reactor is gone, so no new jobs can be queued; dropping
        // every shard handle disconnects the queues and the workers
        // drain what remains before exiting.
        self.map.shutdown();
        let merged = self.metrics();
        self.profiler.absorb(merged.clone());
        merged
    }
}

impl std::fmt::Debug for ShardMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardMap")
            .field("resident", &self.resident())
            .field("evictions", &self.evictions())
            .finish_non_exhaustive()
    }
}

/// Maps a compute request onto its cache identity; `None` for the
/// uncacheable inline kinds (`Stats`/`Health`/`Telemetry`/`TraceDump`).
pub(crate) fn cache_key(fingerprint: u64, request: &Request) -> Option<CacheKey> {
    let budget_bits =
        |budget: &mcdvfs_core::InefficiencyBudget| budget.bound().map_or(u64::MAX, f64::to_bits);
    let (kind, a, b, c) = match request {
        Request::OptimalSetting { budget } => (0u8, budget_bits(budget), 0, 0),
        Request::Cluster { budget, threshold } => (1, budget_bits(budget), threshold.to_bits(), 0),
        Request::StableRegions { budget, threshold } => {
            (2, budget_bits(budget), threshold.to_bits(), 0)
        }
        Request::GovernedReplay { governor, budget } => {
            (3, budget_bits(budget), 0, fnv1a64(governor.as_bytes()))
        }
        Request::PolicyReplay {
            policy,
            budget,
            scenario,
        } => (
            4,
            budget_bits(budget),
            fnv1a64(scenario.as_bytes()),
            fnv1a64(policy.as_bytes()),
        ),
        Request::Stats | Request::Health | Request::Telemetry | Request::TraceDump { .. } => {
            return None
        }
    };
    Some(CacheKey {
        fingerprint,
        kind,
        budget_bits: a,
        threshold_bits: b,
        governor_hash: c,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdvfs_core::InefficiencyBudget;

    #[test]
    fn every_compute_kind_has_a_cache_key_and_inline_kinds_have_none() {
        let b = InefficiencyBudget::bounded(1.3).unwrap();
        let compute = [
            Request::OptimalSetting { budget: b },
            Request::Cluster {
                budget: b,
                threshold: 0.05,
            },
            Request::StableRegions {
                budget: b,
                threshold: 0.05,
            },
            Request::GovernedReplay {
                governor: "paper".to_string(),
                budget: b,
            },
            Request::PolicyReplay {
                policy: "reactive".to_string(),
                budget: b,
                scenario: "load_burst".to_string(),
            },
        ];
        let mut kinds = std::collections::HashSet::new();
        for request in &compute {
            let key = cache_key(0xfeed, request)
                .unwrap_or_else(|| panic!("{} must be cacheable", request.kind()));
            assert_eq!(key.fingerprint, 0xfeed);
            assert!(kinds.insert(key.kind), "kind discriminants must differ");
        }
        // Inline-answered kinds carry no key; dispatch must never send
        // them to the compute path (the keyless fallback replies with a
        // typed internal error rather than panicking if it ever does).
        assert!(cache_key(0xfeed, &Request::Stats).is_none());
        assert!(cache_key(0xfeed, &Request::Health).is_none());
        assert!(cache_key(0xfeed, &Request::Telemetry).is_none());
        assert!(cache_key(
            0xfeed,
            &Request::TraceDump {
                limit: 8,
                slow_only: false,
            }
        )
        .is_none());
    }

    #[test]
    fn unconstrained_budget_key_cannot_collide_with_a_finite_one() {
        let finite = cache_key(
            1,
            &Request::OptimalSetting {
                budget: InefficiencyBudget::bounded(1.3).unwrap(),
            },
        )
        .unwrap();
        let unconstrained = cache_key(
            1,
            &Request::OptimalSetting {
                budget: InefficiencyBudget::Unconstrained,
            },
        )
        .unwrap();
        assert_eq!(unconstrained.budget_bits, u64::MAX);
        assert_ne!(finite.budget_bits, unconstrained.budget_bits);
    }
}
