//! Blocking clients for the wire protocol.
//!
//! One [`Client`] wraps one TCP connection and issues requests
//! sequentially — the shape the end-to-end tests need. [`ClientPool`]
//! holds many connections to one server and round-robins requests across
//! them, so the load generator and multi-tenant tests drive hundreds of
//! concurrent sockets without duplicating framing code. Decoded replies
//! reconstruct every `f64` bit-for-bit, so a client comparing against
//! direct [`SweepEngine`](mcdvfs_core::SweepEngine) results can assert
//! exact equality.

use crate::protocol::{read_frame, write_frame, Request, Response};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to one server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects, with generous socket deadlines so a dead server surfaces
    /// as an error rather than a hang.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        // Request/reply frames are latency-bound single packets; leaving
        // Nagle on costs a delayed-ACK round trip per exchange.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request to the default tenant and blocks for its reply.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a closed connection or an undecodable reply
    /// maps to [`io::ErrorKind::InvalidData`] /
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        self.exchange(&request.encode())
    }

    /// Sends one request addressed to a named tenant (`None` targets the
    /// default engine) and blocks for its reply.
    ///
    /// # Errors
    ///
    /// Same surface as [`request`](Self::request).
    pub fn request_for(
        &mut self,
        workload: Option<&str>,
        request: &Request,
    ) -> io::Result<Response> {
        self.exchange(&request.encode_for(workload))
    }

    fn exchange(&mut self, payload: &str) -> io::Result<Response> {
        write_frame(&mut self.writer, payload)?;
        let reply = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Response::decode(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// N blocking connections to one server, used round-robin.
///
/// Every connection stays open for the pool's lifetime — the natural way
/// to hold a large population of mostly idle sockets against the reactor
/// while spreading a request stream across all of them.
#[derive(Debug)]
pub struct ClientPool {
    clients: Vec<Client>,
    next: usize,
}

impl ClientPool {
    /// Opens `connections` sockets to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the first connection failure; sockets opened before the
    /// failure are closed by drop.
    pub fn connect(addr: SocketAddr, connections: usize) -> io::Result<Self> {
        let clients = (0..connections.max(1))
            .map(|_| Client::connect(addr))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Self { clients, next: 0 })
    }

    /// Open connections in the pool.
    #[must_use]
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether the pool holds no connections (it never does — `connect`
    /// clamps to at least one).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Sends one request on the next connection in round-robin order.
    ///
    /// # Errors
    ///
    /// Same surface as [`Client::request`].
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        self.request_for(None, request)
    }

    /// Round-robin [`Client::request_for`]: addresses a named tenant
    /// (`None` targets the default engine).
    ///
    /// # Errors
    ///
    /// Same surface as [`Client::request`].
    pub fn request_for(
        &mut self,
        workload: Option<&str>,
        request: &Request,
    ) -> io::Result<Response> {
        let idx = self.next;
        self.next = (self.next + 1) % self.clients.len();
        self.clients[idx].request_for(workload, request)
    }
}
