//! A minimal blocking client for the wire protocol.
//!
//! One [`Client`] wraps one TCP connection and issues requests
//! sequentially — the shape the load generator and the end-to-end tests
//! need. Decoded replies reconstruct every `f64` bit-for-bit, so a client
//! comparing against direct [`SweepEngine`](mcdvfs_core::SweepEngine)
//! results can assert exact equality.

use crate::protocol::{read_frame, write_frame, Request, Response};
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to one server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects, with generous socket deadlines so a dead server surfaces
    /// as an error rather than a hang.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and blocks for its reply.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a closed connection or an undecodable reply
    /// maps to [`io::ErrorKind::InvalidData`] /
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &request.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Response::decode(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}
