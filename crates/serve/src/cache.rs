//! Sharded LRU cache of fully encoded replies.
//!
//! The unit of caching is the *rendered* response string: a hit skips
//! both the sweep computation and the JSON encode, and — because the
//! cached bytes are exactly what the first computation framed — the
//! cached path is trivially bit-identical to the computed path.
//!
//! Keys are small fixed-size tuples ([`CacheKey`]) rather than request
//! strings: the characterization fingerprint pins *which data* answered,
//! and the query parameters are folded in as exact IEEE-754 bits, so two
//! budgets that render alike but differ in the last ulp occupy distinct
//! entries. Shards each take an independent mutex so concurrent workers
//! rarely contend; eviction is per-shard LRU by logical tick.

use mcdvfs_types::Fnv1a64;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Identity of one cacheable query against one characterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`CharacterizationGrid::fingerprint`](mcdvfs_sim::CharacterizationGrid::fingerprint)
    /// of the data that answers the query.
    pub fingerprint: u64,
    /// Query kind discriminator.
    pub kind: u8,
    /// Budget as IEEE-754 bits; `u64::MAX` (a NaN pattern no finite
    /// budget produces) for an unconstrained budget.
    pub budget_bits: u64,
    /// Threshold as IEEE-754 bits; `0` when the query has none.
    pub threshold_bits: u64,
    /// FNV-1a of the governor name; `0` when the query has none.
    pub governor_hash: u64,
}

impl CacheKey {
    fn shard_of(&self, shards: usize) -> usize {
        let mut h = Fnv1a64::new();
        h.write_u64(self.fingerprint);
        h.write(&[self.kind]);
        h.write_u64(self.budget_bits);
        h.write_u64(self.threshold_bits);
        h.write_u64(self.governor_hash);
        (h.finish() % shards as u64) as usize
    }

    /// Total order on key bits, used only to break eviction ties
    /// deterministically — `HashMap` iteration order must never decide
    /// which entry dies.
    fn tie_bits(&self) -> (u64, u8, u64, u64, u64) {
        (
            self.fingerprint,
            self.kind,
            self.budget_bits,
            self.threshold_bits,
            self.governor_hash,
        )
    }
}

#[derive(Debug)]
struct Entry {
    value: Arc<String>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

impl Shard {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// A fixed-capacity response cache split into independently locked
/// shards.
#[derive(Debug)]
pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
}

impl ShardedLru {
    /// Creates a cache of roughly `capacity` entries split over
    /// `shards` locks. Zero values are clamped to one, and the shard
    /// count is clamped to `capacity` so a small cache never
    /// over-provisions (`div_ceil` would otherwise round every shard up
    /// to one entry — a 4-entry cache over 8 shards would hold 8).
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.max(1).min(capacity);
        let capacity_per_shard = capacity.div_ceil(shards);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard,
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[key.shard_of(self.shards.len())]
    }

    /// Looks up a reply, refreshing its recency on a hit. A miss leaves
    /// the shard's recency tick untouched, so a stream of misses cannot
    /// age out resident entries' relative order.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<Arc<String>> {
        let shard = &mut *self.shard(key).lock().expect("cache shard poisoned");
        let entry = shard.map.get_mut(key)?;
        shard.tick += 1;
        entry.last_used = shard.tick;
        Some(Arc::clone(&entry.value))
    }

    /// Stores a reply, evicting the shard's least-recently-used entry
    /// when the shard is full.
    pub fn insert(&self, key: CacheKey, value: Arc<String>) {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        let tick = shard.touch();
        if shard.map.len() >= self.capacity_per_shard && !shard.map.contains_key(&key) {
            // `last_used` ties are real (entries inserted back-to-back
            // with no intervening hits), so break them on key bits —
            // never on HashMap iteration order, which varies run to run.
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(k, e)| (e.last_used, k.tie_bits()))
                .map(|(k, _)| *k)
            {
                shard.map.remove(&oldest);
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Total entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// `true` when no shard holds an entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(kind: u8, budget: f64) -> CacheKey {
        CacheKey {
            fingerprint: 0xfeed,
            kind,
            budget_bits: budget.to_bits(),
            threshold_bits: 0,
            governor_hash: 0,
        }
    }

    #[test]
    fn hit_returns_the_stored_reply() {
        let cache = ShardedLru::new(8, 2);
        assert!(cache.get(&key(0, 1.3)).is_none());
        cache.insert(key(0, 1.3), Arc::new("reply".to_string()));
        assert_eq!(cache.get(&key(0, 1.3)).unwrap().as_str(), "reply");
        // Same budget, different kind or fingerprint: distinct entries.
        assert!(cache.get(&key(1, 1.3)).is_none());
        let mut other = key(0, 1.3);
        other.fingerprint = 0xbeef;
        assert!(cache.get(&other).is_none());
    }

    #[test]
    fn eviction_is_least_recently_used_per_shard() {
        // One shard so the LRU order is fully observable.
        let cache = ShardedLru::new(2, 1);
        cache.insert(key(0, 1.0), Arc::new("a".to_string()));
        cache.insert(key(0, 1.1), Arc::new("b".to_string()));
        // Touch `a`, then insert a third entry: `b` is the LRU victim.
        assert!(cache.get(&key(0, 1.0)).is_some());
        cache.insert(key(0, 1.2), Arc::new("c".to_string()));
        assert!(cache.get(&key(0, 1.0)).is_some());
        assert!(cache.get(&key(0, 1.1)).is_none());
        assert!(cache.get(&key(0, 1.2)).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn tied_recency_evicts_by_key_bits_not_hashmap_order() {
        let cache = ShardedLru::new(3, 1);
        cache.insert(key(0, 1.0), Arc::new("a".to_string()));
        cache.insert(key(0, 1.1), Arc::new("b".to_string()));
        cache.insert(key(0, 1.2), Arc::new("c".to_string()));
        // Flatten every entry onto one tick so the eviction scan sees a
        // genuine three-way tie, then insert a fourth entry. The victim
        // must be chosen by key bits (smallest budget_bits here — the
        // keys agree on every other field), not by whichever entry
        // HashMap iteration happened to visit first this run.
        {
            let mut shard = cache.shards[0].lock().unwrap();
            for e in shard.map.values_mut() {
                e.last_used = 7;
            }
        }
        cache.insert(key(0, 1.3), Arc::new("d".to_string()));
        assert!(cache.get(&key(0, 1.0)).is_none(), "smallest key bits dies");
        assert!(cache.get(&key(0, 1.1)).is_some());
        assert!(cache.get(&key(0, 1.2)).is_some());
        assert!(cache.get(&key(0, 1.3)).is_some());
    }

    #[test]
    fn a_miss_does_not_advance_the_recency_tick() {
        let cache = ShardedLru::new(2, 1);
        cache.insert(key(0, 1.0), Arc::new("a".to_string()));
        let before = cache.shards[0].lock().unwrap().tick;
        assert!(cache.get(&key(0, 9.9)).is_none());
        assert!(cache.get(&key(1, 9.9)).is_none());
        assert_eq!(
            cache.shards[0].lock().unwrap().tick,
            before,
            "misses must not age resident entries"
        );
        assert!(cache.get(&key(0, 1.0)).is_some(), "hits still tick");
        assert_eq!(cache.shards[0].lock().unwrap().tick, before + 1);
    }

    #[test]
    fn small_capacity_clamps_shard_count_instead_of_over_provisioning() {
        // A 4-entry cache over 8 shards must hold 4 entries, not 8
        // (div_ceil would otherwise give every shard one slot).
        let cache = ShardedLru::new(4, 8);
        for i in 0..32 {
            cache.insert(key(0, 1.0 + f64::from(i)), Arc::new(i.to_string()));
        }
        assert!(
            cache.len() <= 4,
            "capacity 4 must bound residency, got {}",
            cache.len()
        );
        // Degenerate corners stay usable.
        let one = ShardedLru::new(1, 16);
        one.insert(key(0, 1.0), Arc::new("a".to_string()));
        one.insert(key(0, 2.0), Arc::new("b".to_string()));
        assert_eq!(one.len(), 1);
        let zero = ShardedLru::new(0, 0);
        zero.insert(key(0, 1.0), Arc::new("a".to_string()));
        assert_eq!(zero.len(), 1);
    }

    #[test]
    fn budgets_distinct_in_the_last_ulp_do_not_collide() {
        let cache = ShardedLru::new(8, 4);
        let a: f64 = 1.05;
        let b = f64::from_bits(a.to_bits() + 1);
        cache.insert(key(0, a), Arc::new("a".to_string()));
        cache.insert(key(0, b), Arc::new("b".to_string()));
        assert_eq!(cache.get(&key(0, a)).unwrap().as_str(), "a");
        assert_eq!(cache.get(&key(0, b)).unwrap().as_str(), "b");
    }
}
