//! Sharded LRU cache of fully encoded replies.
//!
//! The unit of caching is the *rendered* response string: a hit skips
//! both the sweep computation and the JSON encode, and — because the
//! cached bytes are exactly what the first computation framed — the
//! cached path is trivially bit-identical to the computed path.
//!
//! Keys are small fixed-size tuples ([`CacheKey`]) rather than request
//! strings: the characterization fingerprint pins *which data* answered,
//! and the query parameters are folded in as exact IEEE-754 bits, so two
//! budgets that render alike but differ in the last ulp occupy distinct
//! entries. Shards each take an independent mutex so concurrent workers
//! rarely contend; eviction is per-shard LRU by logical tick.

use mcdvfs_types::Fnv1a64;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Identity of one cacheable query against one characterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`CharacterizationGrid::fingerprint`](mcdvfs_sim::CharacterizationGrid::fingerprint)
    /// of the data that answers the query.
    pub fingerprint: u64,
    /// Query kind discriminator.
    pub kind: u8,
    /// Budget as IEEE-754 bits; `u64::MAX` (a NaN pattern no finite
    /// budget produces) for an unconstrained budget.
    pub budget_bits: u64,
    /// Threshold as IEEE-754 bits; `0` when the query has none.
    pub threshold_bits: u64,
    /// FNV-1a of the governor name; `0` when the query has none.
    pub governor_hash: u64,
}

impl CacheKey {
    fn shard_of(&self, shards: usize) -> usize {
        let mut h = Fnv1a64::new();
        h.write_u64(self.fingerprint);
        h.write(&[self.kind]);
        h.write_u64(self.budget_bits);
        h.write_u64(self.threshold_bits);
        h.write_u64(self.governor_hash);
        (h.finish() % shards as u64) as usize
    }
}

#[derive(Debug)]
struct Entry {
    value: Arc<String>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

impl Shard {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// A fixed-capacity response cache split into independently locked
/// shards.
#[derive(Debug)]
pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
}

impl ShardedLru {
    /// Creates a cache of roughly `capacity` entries split over
    /// `shards` locks. Zero values are clamped to one.
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let capacity_per_shard = (capacity.max(1)).div_ceil(shards);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard,
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[key.shard_of(self.shards.len())]
    }

    /// Looks up a reply, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<Arc<String>> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        let tick = shard.touch();
        let entry = shard.map.get_mut(key)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.value))
    }

    /// Stores a reply, evicting the shard's least-recently-used entry
    /// when the shard is full.
    pub fn insert(&self, key: CacheKey, value: Arc<String>) {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        let tick = shard.touch();
        if shard.map.len() >= self.capacity_per_shard && !shard.map.contains_key(&key) {
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                shard.map.remove(&oldest);
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Total entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// `true` when no shard holds an entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(kind: u8, budget: f64) -> CacheKey {
        CacheKey {
            fingerprint: 0xfeed,
            kind,
            budget_bits: budget.to_bits(),
            threshold_bits: 0,
            governor_hash: 0,
        }
    }

    #[test]
    fn hit_returns_the_stored_reply() {
        let cache = ShardedLru::new(8, 2);
        assert!(cache.get(&key(0, 1.3)).is_none());
        cache.insert(key(0, 1.3), Arc::new("reply".to_string()));
        assert_eq!(cache.get(&key(0, 1.3)).unwrap().as_str(), "reply");
        // Same budget, different kind or fingerprint: distinct entries.
        assert!(cache.get(&key(1, 1.3)).is_none());
        let mut other = key(0, 1.3);
        other.fingerprint = 0xbeef;
        assert!(cache.get(&other).is_none());
    }

    #[test]
    fn eviction_is_least_recently_used_per_shard() {
        // One shard so the LRU order is fully observable.
        let cache = ShardedLru::new(2, 1);
        cache.insert(key(0, 1.0), Arc::new("a".to_string()));
        cache.insert(key(0, 1.1), Arc::new("b".to_string()));
        // Touch `a`, then insert a third entry: `b` is the LRU victim.
        assert!(cache.get(&key(0, 1.0)).is_some());
        cache.insert(key(0, 1.2), Arc::new("c".to_string()));
        assert!(cache.get(&key(0, 1.0)).is_some());
        assert!(cache.get(&key(0, 1.1)).is_none());
        assert!(cache.get(&key(0, 1.2)).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn budgets_distinct_in_the_last_ulp_do_not_collide() {
        let cache = ShardedLru::new(8, 4);
        let a: f64 = 1.05;
        let b = f64::from_bits(a.to_bits() + 1);
        cache.insert(key(0, a), Arc::new("a".to_string()));
        cache.insert(key(0, b), Arc::new("b".to_string()));
        assert_eq!(cache.get(&key(0, a)).unwrap().as_str(), "a");
        assert_eq!(cache.get(&key(0, b)).unwrap().as_str(), "b");
    }
}
