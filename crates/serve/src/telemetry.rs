//! Server-side telemetry assembly and the client-side cross-check.
//!
//! The reactor thread owns all windowed state: [`TelemetryCtx`] bundles
//! the flight recorder (shared with shard workers for timestamping), the
//! single-writer [`WindowRing`], the live in-flight gauge, and the start
//! instant behind `uptime_ms`. Everything here is assembled on the
//! reactor thread, so the window ring needs no lock at all
//! (`RefCell`) and the in-flight gauge is a plain `Cell`.
//!
//! [`cross_check`] is the validation pass `loadgen` and the e2e suite
//! share: server-side telemetry must agree with what the client
//! observed — total request counts match *exactly* (the server counts
//! every decoded request, the client counts every request it issued),
//! and the server-measured p95 must not exceed the client-measured p95
//! (every server-side sample excludes the network and client stack
//! that its client-side counterpart includes).

use crate::protocol::{WireHistogram, WireStats, WireTelemetry, WireTrace};
use mcdvfs_obs::{FlightRecorder, Histogram, RequestTrace, WindowClass, WindowRing};
use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Instant;

/// Reactor-owned telemetry state (plus the worker-shared recorder).
pub(crate) struct TelemetryCtx {
    /// Flight recorder; shard workers hold a clone for stamping.
    pub recorder: Arc<FlightRecorder>,
    /// Single-writer ring of 1-second windows.
    pub windows: RefCell<WindowRing>,
    /// Compute requests currently queued or running.
    pub in_flight: Cell<u64>,
    /// Server start instant, behind `uptime_ms`.
    pub started: Instant,
}

impl TelemetryCtx {
    pub fn new(recorder: Arc<FlightRecorder>, window_seconds: usize) -> Self {
        Self {
            recorder,
            windows: RefCell::new(WindowRing::new(window_seconds)),
            in_flight: Cell::new(0),
            started: Instant::now(),
        }
    }

    /// Milliseconds since the server started.
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Counts one served reply into the current 1-second window.
    /// No-op when telemetry is disabled — windows are part of the
    /// zero-overhead gating contract.
    pub fn observe_window(&self, class: WindowClass, latency_ns: f64) {
        if self.recorder.is_enabled() {
            self.windows
                .borrow_mut()
                .observe(self.recorder.now_ns(), class, latency_ns);
        }
    }

    /// Raises the current window's queue-depth high-water mark.
    pub fn observe_queue_depth(&self, depth: u64) {
        if self.recorder.is_enabled() {
            self.windows
                .borrow_mut()
                .observe_queue_depth(self.recorder.now_ns(), depth);
        }
    }

    pub fn in_flight_add(&self, delta: i64) {
        let v = i64::try_from(self.in_flight.get()).unwrap_or(i64::MAX) + delta;
        self.in_flight
            .set(u64::try_from(v.max(0)).expect("non-negative"));
    }
}

/// Summarizes one named histogram for the wire.
pub(crate) fn histogram_summary(name: &str, h: &Histogram) -> WireHistogram {
    WireHistogram {
        name: name.to_string(),
        count: h.total(),
        mean_ns: h.mean().unwrap_or(0.0),
        p50_ns: h.percentile(0.5).unwrap_or(0.0),
        p95_ns: h.percentile(0.95).unwrap_or(0.0),
        max_ns: h.max_value().unwrap_or(0.0),
    }
}

/// Renders a flight record for the wire.
pub(crate) fn wire_trace(t: &RequestTrace) -> WireTrace {
    WireTrace {
        id: t.id,
        kind: t.kind.to_string(),
        fingerprint: format!("{:016x}", t.fingerprint),
        outcome: t.outcome.name().to_string(),
        total_ns: t.total_ns(),
        stages: t
            .stages()
            .map(|(stage, t_ns)| crate::protocol::WireStage {
                stage: stage.name().to_string(),
                t_ns,
            })
            .collect(),
    }
}

/// The numbers a server/client telemetry cross-check compared.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossCheck {
    /// Requests the server decoded (its `stats.requests` counter).
    pub server_total: u64,
    /// Requests the client issued (and got answers for).
    pub client_total: u64,
    /// Server-measured request p95, nanoseconds.
    pub server_p95_ns: f64,
    /// Client-measured request p95, nanoseconds.
    pub client_p95_ns: f64,
}

/// Cross-checks server-side telemetry against client-observed counts:
/// totals must match exactly, and the server-measured p95 (which
/// excludes the network and the client stack) must not exceed the
/// client-measured p95.
///
/// # Errors
///
/// Returns a human-readable description of the first disagreement —
/// count drift, missing server histogram, or a server p95 above the
/// client p95.
pub fn cross_check(
    stats: &WireStats,
    telemetry: &WireTelemetry,
    client_total: u64,
    client_p95_ns: f64,
) -> Result<CrossCheck, String> {
    let server_total = stats.requests;
    if server_total != client_total {
        return Err(format!(
            "request-count drift: server decoded {server_total}, client issued {client_total}"
        ));
    }
    let server_p95_ns = telemetry
        .histograms
        .iter()
        .find(|h| h.name == "latency.request_ns")
        .map(|h| h.p95_ns)
        .ok_or("server telemetry has no latency.request_ns histogram")?;
    if server_p95_ns > client_p95_ns {
        return Err(format!(
            "server p95 {server_p95_ns:.0} ns exceeds client p95 {client_p95_ns:.0} ns"
        ));
    }
    Ok(CrossCheck {
        server_total,
        client_total,
        server_p95_ns,
        client_p95_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdvfs_obs::{Outcome, Stage};
    use std::time::Duration;

    fn stats(requests: u64) -> WireStats {
        WireStats {
            requests,
            cache_hits: 0,
            cache_misses: 0,
            overloaded: 0,
            protocol_errors: 0,
            queue_depth_max: 0,
            engines: 1,
            evictions: 0,
            shards: Vec::new(),
            policy: crate::protocol::WirePolicyCounters::default(),
            store: crate::protocol::WireStoreCounters::default(),
            uptime_ms: 10,
            requests_in_flight: 0,
            rendered: String::new(),
        }
    }

    fn telemetry(p95: f64) -> WireTelemetry {
        WireTelemetry {
            enabled: true,
            uptime_ms: 10,
            windows: Vec::new(),
            histograms: vec![WireHistogram {
                name: "latency.request_ns".to_string(),
                count: 8,
                mean_ns: p95 / 2.0,
                p50_ns: p95 / 2.0,
                p95_ns: p95,
                max_ns: p95 * 2.0,
            }],
            shard_compute: Vec::new(),
            policy: crate::protocol::WirePolicyCounters::default(),
            store: crate::protocol::WireStoreCounters::default(),
            flight_recorded: 8,
            flight_dropped: 0,
            flight_slow: 0,
            slow_threshold_ns: 250_000_000,
        }
    }

    #[test]
    fn cross_check_accepts_exact_totals_and_lower_server_p95() {
        let check = cross_check(&stats(8), &telemetry(1_000.0), 8, 1_500.0).unwrap();
        assert_eq!(check.server_total, 8);
        assert_eq!(check.server_p95_ns, 1_000.0);
    }

    #[test]
    fn cross_check_rejects_count_drift_and_inverted_p95() {
        let err = cross_check(&stats(9), &telemetry(1_000.0), 8, 1_500.0).unwrap_err();
        assert!(err.contains("drift"), "{err}");
        let err = cross_check(&stats(8), &telemetry(2_000.0), 8, 1_500.0).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
        let mut missing = telemetry(1_000.0);
        missing.histograms.clear();
        let err = cross_check(&stats(8), &missing, 8, 1_500.0).unwrap_err();
        assert!(err.contains("latency.request_ns"), "{err}");
    }

    #[test]
    fn in_flight_gauge_saturates_at_zero() {
        let ctx = TelemetryCtx::new(Arc::new(FlightRecorder::disabled()), 4);
        ctx.in_flight_add(2);
        ctx.in_flight_add(-1);
        assert_eq!(ctx.in_flight.get(), 1);
        ctx.in_flight_add(-5);
        assert_eq!(ctx.in_flight.get(), 0);
    }

    #[test]
    fn wire_trace_renders_stages_in_pipeline_order() {
        let rec = FlightRecorder::enabled(4, Duration::from_secs(1));
        let mut t = rec.begin("cluster");
        t.fingerprint = 0xfeed;
        t.outcome = Outcome::CacheHit;
        t.stamp(Stage::Encoded, 40);
        t.stamp(Stage::Accepted, 10);
        let wire = wire_trace(&t);
        assert_eq!(wire.kind, "cluster");
        assert_eq!(wire.fingerprint, "000000000000feed");
        assert_eq!(wire.outcome, "cache_hit");
        assert_eq!(wire.total_ns, 30);
        assert_eq!(
            wire.stages
                .iter()
                .map(|s| s.stage.as_str())
                .collect::<Vec<_>>(),
            vec!["accepted", "encoded"]
        );
    }
}
