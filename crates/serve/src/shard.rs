//! Sharded multi-tenant engine layer.
//!
//! One [`ShardMap`] owns every engine the server answers queries from,
//! keyed by characterization fingerprint
//! ([`CharacterizationGrid::fingerprint`](mcdvfs_sim::CharacterizationGrid::fingerprint)).
//! The default tenant's shard is built eagerly from the [`ServeState`]
//! engine and pinned; every other tenant is a [`TenantSpec`] —
//! `(System, SampleTrace, FrequencyGrid)` — whose shard is characterized
//! lazily on first request and evicted least-recently-used when the
//! resident count would exceed `max_shards`. An evicted tenant is not an
//! error: its next request rebuilds the shard from the spec, and because
//! characterization is deterministic the rebuilt shard carries the same
//! fingerprint and serves bit-identical replies.
//!
//! Each shard owns its own bounded job queue, worker slice, and reply
//! LRU, so tenants never serialize on one another: a slow governed
//! replay for one workload cannot queue behind — or shed — another
//! workload's traffic. Workers hold the *core* ([`ShardCore`]) but never
//! the job sender; dropping a shard's [`ShardHandle`] (eviction or
//! shutdown) disconnects the queue, the workers drain what was already
//! accepted, deliver those completions, and exit. Worker join handles
//! live in the map's reaper list and are joined at shutdown, never from
//! the reactor tick.

use crate::cache::{CacheKey, ShardedLru};
use crate::protocol::{
    Request, Response, WireChoice, WireCluster, WirePolicyCounters, WirePolicyReport, WireRegion,
    WireReport, WireShard, WireStoreCounters,
};
use crate::server::ServerConfig;
use mcdvfs_core::{GovernedRun, PolicyScorecard, RunReport, SweepEngine};
use mcdvfs_obs::{FlightRecorder, MetricSet, Outcome, Profiler, RequestTrace, Stage};
use mcdvfs_policy::{build_policy, PolicyGovernor, SHIPPED_POLICIES};
use mcdvfs_sim::System;
use mcdvfs_store::SnapshotStore;
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::SampleTrace;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How long an idle shard worker waits for work before re-checking for
/// disconnect.
const WORKER_POLL: Duration = Duration::from_millis(5);

/// Identifies one reactor connection *instance*: slot id plus a
/// generation that changes whenever the slot is reused or the request
/// times out, so a late completion can never answer the wrong client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ConnToken {
    /// Slab slot index.
    pub id: usize,
    /// Monotonic generation the slot held when the job was dispatched.
    pub gen: u64,
}

/// One queued compute request, owned by a shard worker until its reply
/// is delivered back to the reactor.
pub(crate) struct Job {
    pub request: Request,
    pub key: CacheKey,
    pub conn: ConnToken,
    pub enqueued: Instant,
    /// Flight record riding along with the request (`None` when
    /// telemetry is off). The worker stamps dequeued/computed/encoded
    /// and hauls it back on the [`Completion`].
    pub trace: Option<RequestTrace>,
}

/// A finished compute reply flowing back to the reactor's poll loop.
pub(crate) struct Completion {
    pub conn: ConnToken,
    pub reply: Arc<String>,
    /// How the worker classified the reply (for window counting).
    pub outcome: Outcome,
    /// The job's flight record, stamped through `encoded`; the reactor
    /// stamps `write_flushed` and commits it.
    pub trace: Option<RequestTrace>,
}

/// Everything needed to lazily characterize one tenant's engine.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    system: System,
    trace: SampleTrace,
    grid: FrequencyGrid,
}

impl TenantSpec {
    /// Bundles the inputs a shard build characterizes from.
    #[must_use]
    pub fn new(system: System, trace: SampleTrace, grid: FrequencyGrid) -> Self {
        Self {
            system,
            trace,
            grid,
        }
    }

    /// Characterizes the spec into an engine. Query-time fan-out is
    /// pinned to one thread — shard workers are the parallelism axis —
    /// and replies stay bit-identical at any width.
    fn build(&self) -> (SweepEngine, SampleTrace) {
        let engine =
            SweepEngine::characterize_with_threads(&self.system, &self.trace, self.grid, 1);
        (engine, self.trace.clone())
    }

    /// Deterministic key of the spec *inputs*, for the snapshot store's
    /// first-touch index: a tenant's fingerprint is only known after
    /// characterization, so the store maps this key to the fingerprint a
    /// previous process learned. `Debug` of `f64` is the shortest
    /// round-trippable rendering, so the key is stable across processes;
    /// a stale or colliding entry merely degrades to a store miss.
    pub fn spec_key(&self, name: &str) -> u64 {
        let mut h = mcdvfs_types::Fnv1a64::new();
        h.write(name.as_bytes());
        h.write(format!("{:?}", self.system).as_bytes());
        h.write(format!("{:?}", self.grid).as_bytes());
        h.write_u64(self.trace.len() as u64);
        for s in self.trace.iter() {
            h.write(format!("{s:?}").as_bytes());
        }
        h.finish()
    }

    /// Characterizes the spec offline and persists the snapshot into
    /// `store`, recording the first-touch index entry for `name` — the
    /// `grid_bake` path. A server pointed at the same store afterwards
    /// warm-starts `name` on first touch instead of characterizing.
    ///
    /// Returns the snapshot fingerprint and its encoded size in bytes.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures as [`mcdvfs_store::SnapshotError`].
    pub fn bake(
        &self,
        name: &str,
        store: &SnapshotStore,
    ) -> std::result::Result<(u64, u64), mcdvfs_store::SnapshotError> {
        let (engine, _) = self.build();
        let snapshot = engine.data().to_snapshot();
        let bytes = store.persist(&snapshot)?;
        store.record_spec(self.spec_key(name), snapshot.fingerprint)?;
        Ok((snapshot.fingerprint, bytes))
    }
}

/// The worker-visible part of one shard: engine, trace, cache, metrics.
/// Deliberately excludes the job sender so worker threads holding the
/// core cannot keep their own queue alive after eviction.
pub(crate) struct ShardCore {
    pub name: String,
    pub fingerprint: u64,
    pub engine: SweepEngine,
    pub trace: SampleTrace,
    pub cache: ShardedLru,
    pub queue_depth: AtomicUsize,
    pub requests: AtomicU64,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    /// Policy-engine counters accumulated by `policy_replay` computes
    /// (cache hits replay nothing, so they do not count).
    pub policy_decisions: AtomicU64,
    pub policy_transitions: AtomicU64,
    pub policy_deadline_misses: AtomicU64,
    pub policy_budget_exhaustions: AtomicU64,
    pub worker_metrics: Vec<Mutex<MetricSet>>,
    /// Shared timestamp base for flight-record stamps (workers never
    /// commit — the reactor does, after the write flush).
    recorder: Arc<FlightRecorder>,
    profiler: Arc<Profiler>,
    compute_delay: Duration,
}

impl ShardCore {
    /// This shard's row in a `stats` reply.
    pub fn wire_row(&self, pinned: bool) -> WireShard {
        WireShard {
            workload: self.name.clone(),
            fingerprint: format!("{:016x}", self.fingerprint),
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed) as u64,
            pinned,
        }
    }
}

/// Reactor-side handle to a live shard. Dropping it disconnects the job
/// queue; the workers drain and exit on their own.
pub(crate) struct ShardHandle {
    pub core: Arc<ShardCore>,
    pub job_tx: SyncSender<Job>,
    pub last_used: u64,
    pub pinned: bool,
}

/// What dispatching a job to a shard produced. The rejected variants
/// hand the job back so the reactor can finish its flight record.
pub(crate) enum Dispatch {
    /// The job was queued; a [`Completion`] will arrive later.
    Queued,
    /// The bounded queue was full; reply `overloaded` inline.
    Shed(Job),
    /// The queue is disconnected (shutdown); reply a typed error inline.
    Gone(Job),
}

/// All shards, the tenant registry, and the worker reaper list.
pub(crate) struct ShardMap {
    shards: Mutex<HashMap<u64, ShardHandle>>,
    /// Tenant name → fingerprint, learned at first build and kept across
    /// evictions (fingerprints are deterministic per spec).
    names: Mutex<HashMap<String, u64>>,
    specs: HashMap<String, TenantSpec>,
    default_name: String,
    /// Every core ever built — live or evicted — so merged metric
    /// snapshots survive eviction.
    cores: Mutex<Vec<Arc<ShardCore>>>,
    worker_handles: Mutex<Vec<JoinHandle<()>>>,
    completions: Sender<Completion>,
    tick: AtomicU64,
    evictions: AtomicU64,
    workers_per_shard: usize,
    queue_bound: usize,
    cache_capacity: usize,
    cache_shards: usize,
    max_shards: usize,
    compute_delay: Duration,
    recorder: Arc<FlightRecorder>,
    profiler: Arc<Profiler>,
    /// Snapshot store for warm-starting lazy shard builds, when the
    /// server was configured with a snapshot directory.
    store: Option<SnapshotStore>,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    store_bytes_read: AtomicU64,
}

impl ShardMap {
    /// Builds the map with the default tenant's shard resident and
    /// pinned, sized from `config`.
    pub fn new(
        default_engine: SweepEngine,
        default_trace: SampleTrace,
        specs: HashMap<String, TenantSpec>,
        completions: Sender<Completion>,
        config: &ServerConfig,
        recorder: Arc<FlightRecorder>,
        profiler: Arc<Profiler>,
    ) -> Self {
        let default_name = default_engine.data().name().to_string();
        let map = Self {
            shards: Mutex::new(HashMap::new()),
            names: Mutex::new(HashMap::new()),
            specs,
            default_name: default_name.clone(),
            cores: Mutex::new(Vec::new()),
            worker_handles: Mutex::new(Vec::new()),
            completions,
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            workers_per_shard: config.workers.max(1),
            queue_bound: config.queue_bound,
            cache_capacity: config.cache_capacity,
            cache_shards: config.cache_shards,
            max_shards: config.max_shards.max(1),
            compute_delay: config.compute_delay,
            recorder,
            profiler,
            store: config
                .snapshot_dir
                .as_ref()
                .and_then(|dir| SnapshotStore::open(dir).ok()),
            store_hits: AtomicU64::new(0),
            store_misses: AtomicU64::new(0),
            store_bytes_read: AtomicU64::new(0),
        };
        map.install(&default_name, default_engine, default_trace, true);
        map
    }

    /// Shards evicted since startup.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Live shard count.
    pub fn resident(&self) -> usize {
        self.shards.lock().expect("shard map poisoned").len()
    }

    /// Resolves a tenant to its live shard, characterizing (and possibly
    /// evicting) as needed. `None` addresses the default tenant.
    ///
    /// # Errors
    ///
    /// Returns a client-facing message for an unknown tenant.
    pub fn resolve(
        &self,
        workload: Option<&str>,
    ) -> Result<(Arc<ShardCore>, SyncSender<Job>), String> {
        let name = workload.unwrap_or(&self.default_name);
        let fingerprint = self
            .names
            .lock()
            .expect("name map poisoned")
            .get(name)
            .copied();
        if let Some(fp) = fingerprint {
            let mut shards = self.shards.lock().expect("shard map poisoned");
            if let Some(handle) = shards.get_mut(&fp) {
                handle.last_used = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
                return Ok((Arc::clone(&handle.core), handle.job_tx.clone()));
            }
        }
        let Some(spec) = self.specs.get(name) else {
            return Err(format!(
                "unknown workload {name:?}; known tenants: {}",
                self.known_tenants().join(", ")
            ));
        };
        let t0 = Instant::now();
        // Try the snapshot store before paying for characterization: on
        // rebuild-after-evict the fingerprint is already known; on first
        // touch the store's spec-key index may reveal it. Bit-identity is
        // guaranteed by `from_snapshot`'s fingerprint re-check, so a
        // warm-started shard serves the same bytes a cold build would.
        let warm = self.warm_start(name, spec, fingerprint);
        let warm_started = warm.is_some();
        let (engine, trace) = match warm {
            Some(engine) => (engine, spec.trace.clone()),
            None => spec.build(),
        };
        let built_ns = t0.elapsed().as_nanos() as f64;
        let fp = engine.data().fingerprint();
        if !warm_started {
            if let Some(store) = &self.store {
                // Persist the cold build so the next process (or the next
                // rebuild after eviction) warm-starts. Failures only cost
                // the warm start; serving continues from the fresh build.
                let snapshot = engine.data().to_snapshot();
                if store.persist(&snapshot).is_ok() {
                    let _ = store.record_spec(spec.spec_key(name), snapshot.fingerprint);
                }
            }
        }
        // Two tenants with bit-identical characterizations share a shard.
        {
            self.names
                .lock()
                .expect("name map poisoned")
                .insert(name.to_string(), fp);
            let mut shards = self.shards.lock().expect("shard map poisoned");
            if let Some(handle) = shards.get_mut(&fp) {
                handle.last_used = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
                return Ok((Arc::clone(&handle.core), handle.job_tx.clone()));
            }
        }
        let core = self.install(name, engine, trace, false);
        record(&core.worker_metrics[0], |m| {
            m.incr("shard.builds", 1);
            m.observe_duration_ns("shard.build_ns", built_ns);
            if warm_started {
                m.incr("shard.warm_starts", 1);
            }
        });
        let tx = {
            let shards = self.shards.lock().expect("shard map poisoned");
            shards
                .get(&core.fingerprint)
                .expect("just-installed shard is resident")
                .job_tx
                .clone()
        };
        Ok((core, tx))
    }

    /// Tries to warm-start `name`'s engine from the snapshot store.
    ///
    /// `known_fp` is the fingerprint learned from a previous build of this
    /// tenant (the rebuild-after-evict path); without one, the store's
    /// spec-key index is consulted. Returns `None` — a store miss — when
    /// the store is disabled, the snapshot is absent, corrupt, from
    /// another format version, or names a different workload; the caller
    /// then characterizes from the spec. Every attempt lands in the
    /// `store.hits` / `store.misses` / `store.bytes_read` counters.
    fn warm_start(
        &self,
        name: &str,
        spec: &TenantSpec,
        known_fp: Option<u64>,
    ) -> Option<SweepEngine> {
        let store = self.store.as_ref()?;
        let miss = || {
            self.store_misses.fetch_add(1, Ordering::Relaxed);
        };
        let fp = match known_fp.or_else(|| store.lookup_spec(spec.spec_key(name))) {
            Some(fp) => fp,
            None => {
                miss();
                return None;
            }
        };
        match SweepEngine::warm_start(store, fp, 1) {
            Ok(Some((engine, bytes_read))) if engine.data().name() == name => {
                self.store_hits.fetch_add(1, Ordering::Relaxed);
                self.store_bytes_read
                    .fetch_add(bytes_read, Ordering::Relaxed);
                Some(engine)
            }
            // A snapshot for another workload under this key (stale index)
            // or any typed decode failure degrades to characterization.
            Ok(Some(_)) | Ok(None) | Err(_) => {
                miss();
                None
            }
        }
    }

    /// Snapshot-store counters for `stats`/`telemetry` replies.
    pub fn store_counters(&self) -> WireStoreCounters {
        WireStoreCounters {
            hits: self.store_hits.load(Ordering::Relaxed),
            misses: self.store_misses.load(Ordering::Relaxed),
            bytes_read: self.store_bytes_read.load(Ordering::Relaxed),
        }
    }

    /// Sorted tenant names the server can route to.
    fn known_tenants(&self) -> Vec<String> {
        let mut names: Vec<String> = self.specs.keys().cloned().collect();
        names.push(self.default_name.clone());
        names.sort();
        names.dedup();
        names
    }

    /// Spawns a shard's workers and makes it resident, evicting the
    /// least-recently-used unpinned shard when over capacity.
    fn install(
        &self,
        name: &str,
        engine: SweepEngine,
        trace: SampleTrace,
        pinned: bool,
    ) -> Arc<ShardCore> {
        let fingerprint = engine.data().fingerprint();
        let core = Arc::new(ShardCore {
            name: name.to_string(),
            fingerprint,
            engine,
            trace,
            cache: ShardedLru::new(self.cache_capacity, self.cache_shards),
            queue_depth: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            policy_decisions: AtomicU64::new(0),
            policy_transitions: AtomicU64::new(0),
            policy_deadline_misses: AtomicU64::new(0),
            policy_budget_exhaustions: AtomicU64::new(0),
            worker_metrics: (0..self.workers_per_shard)
                .map(|_| Mutex::new(MetricSet::new()))
                .collect(),
            recorder: Arc::clone(&self.recorder),
            profiler: Arc::clone(&self.profiler),
            compute_delay: self.compute_delay,
        });
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(self.queue_bound.max(1));
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut handles = self.worker_handles.lock().expect("reaper list poisoned");
        for slot in 0..self.workers_per_shard {
            let core = Arc::clone(&core);
            let rx = Arc::clone(&job_rx);
            let completions = self.completions.clone();
            handles.push(thread::spawn(move || {
                worker_loop(&core, &rx, &completions, slot);
            }));
        }
        drop(handles);

        let mut shards = self.shards.lock().expect("shard map poisoned");
        if shards.len() >= self.max_shards {
            // Deterministic victim: stalest tick, fingerprint tie-break.
            let victim = shards
                .iter()
                .filter(|(_, h)| !h.pinned)
                .min_by_key(|(fp, h)| (h.last_used, **fp))
                .map(|(fp, _)| *fp);
            if let Some(fp) = victim {
                shards.remove(&fp);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shards.insert(
            fingerprint,
            ShardHandle {
                core: Arc::clone(&core),
                job_tx,
                last_used: self.tick.fetch_add(1, Ordering::Relaxed) + 1,
                pinned,
            },
        );
        drop(shards);
        self.names
            .lock()
            .expect("name map poisoned")
            .insert(name.to_string(), fingerprint);
        self.cores
            .lock()
            .expect("core list poisoned")
            .push(Arc::clone(&core));
        core
    }

    /// Per-shard `stats` rows, sorted by workload name.
    pub fn wire_rows(&self) -> Vec<WireShard> {
        let shards = self.shards.lock().expect("shard map poisoned");
        let mut rows: Vec<WireShard> = shards.values().map(|h| h.core.wire_row(h.pinned)).collect();
        rows.sort_by(|a, b| a.workload.cmp(&b.workload));
        rows
    }

    /// Sums every core's policy-engine counters (live and evicted, so
    /// totals survive eviction like merged metrics do).
    pub fn policy_counters(&self) -> WirePolicyCounters {
        let mut total = WirePolicyCounters::default();
        for core in self.cores.lock().expect("core list poisoned").iter() {
            total.decisions += core.policy_decisions.load(Ordering::Relaxed);
            total.transitions += core.policy_transitions.load(Ordering::Relaxed);
            total.deadline_misses += core.policy_deadline_misses.load(Ordering::Relaxed);
            total.budget_exhaustions += core.policy_budget_exhaustions.load(Ordering::Relaxed);
        }
        total
    }

    /// Merges every core's worker metric slots (live and evicted) into
    /// `into`.
    pub fn merge_metrics(&self, into: &mut MetricSet) {
        for core in self.cores.lock().expect("core list poisoned").iter() {
            for slot in &core.worker_metrics {
                into.merge(&slot.lock().expect("worker metrics poisoned"));
            }
        }
    }

    /// Per-shard merged worker metrics, sorted by workload name — the
    /// per-shard view a `telemetry` reply summarizes (the global merge
    /// above flattens shard identity away).
    pub fn shard_metric_rows(&self) -> Vec<(String, MetricSet)> {
        // Keyed by name so an evicted-and-rebuilt shard folds into one
        // row rather than duplicating its workload.
        let mut rows: std::collections::BTreeMap<String, MetricSet> =
            std::collections::BTreeMap::new();
        for core in self.cores.lock().expect("core list poisoned").iter() {
            let merged = rows.entry(core.name.clone()).or_default();
            for slot in &core.worker_metrics {
                merged.merge(&slot.lock().expect("worker metrics poisoned"));
            }
        }
        rows.into_iter().collect()
    }

    /// Disconnects every queue and joins every worker ever spawned.
    /// Called after the reactor has exited, so no new jobs can arrive.
    pub fn shutdown(&self) {
        self.shards.lock().expect("shard map poisoned").clear();
        let handles =
            std::mem::take(&mut *self.worker_handles.lock().expect("reaper list poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Tries to queue a job on a shard, counting depth before the send so a
/// fast worker's decrement can never race the increment below zero.
pub(crate) fn try_dispatch(core: &ShardCore, tx: &SyncSender<Job>, job: Job) -> (Dispatch, usize) {
    let depth = core.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
    match tx.try_send(job) {
        Ok(()) => (Dispatch::Queued, depth),
        Err(TrySendError::Full(job)) => {
            core.queue_depth.fetch_sub(1, Ordering::Relaxed);
            (Dispatch::Shed(job), depth)
        }
        Err(TrySendError::Disconnected(job)) => {
            core.queue_depth.fetch_sub(1, Ordering::Relaxed);
            (Dispatch::Gone(job), depth)
        }
    }
}

fn record(slot: &Mutex<MetricSet>, f: impl FnOnce(&mut MetricSet)) {
    f(&mut slot.lock().expect("metric slot poisoned"));
}

fn worker_loop(
    core: &Arc<ShardCore>,
    rx: &Arc<Mutex<Receiver<Job>>>,
    completions: &Sender<Completion>,
    slot: usize,
) {
    loop {
        let job = {
            let guard = rx.lock().expect("job queue poisoned");
            match guard.recv_timeout(WORKER_POLL) {
                Ok(job) => job,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        core.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let mut trace = job.trace;
        if let Some(t) = trace.as_mut() {
            t.stamp(Stage::Dequeued, core.recorder.now_ns());
        }
        let p = &core.profiler;
        let queued_ns = job.enqueued.elapsed().as_nanos() as f64;
        {
            let _span = p.span("dispatch");
            record(&core.worker_metrics[slot], |m| {
                m.observe_duration_ns("latency.queue_ns", queued_ns);
            });
        }
        if !core.compute_delay.is_zero() {
            thread::sleep(core.compute_delay);
        }
        let t0 = Instant::now();
        let response = {
            let _span = p.span("compute");
            compute(core, &job.request)
        };
        let computed_at = core.recorder.now_ns();
        let encoded = {
            let _span = p.span("encode");
            Arc::new(response.encode())
        };
        let compute_ns = t0.elapsed().as_nanos() as f64;
        record(&core.worker_metrics[slot], |m| {
            m.observe_duration_ns("latency.compute_ns", compute_ns);
            m.incr("cache.miss", 1);
        });
        let outcome = if matches!(response, Response::Error(_)) {
            Outcome::Error
        } else {
            Outcome::Ok
        };
        if let Some(t) = trace.as_mut() {
            let encoded_at = core.recorder.now_ns();
            t.stamp(Stage::Computed, computed_at);
            t.stamp(Stage::Encoded, encoded_at);
            t.outcome = outcome;
            // Per-(kind, stage) latency histograms, gated with the
            // trace so the telemetry-off path records nothing extra.
            let kind = job.request.kind();
            let queue = t
                .stage_ns(Stage::Dequeued)
                .zip(t.stage_ns(Stage::Enqueued))
                .map(|(d, e)| d.saturating_sub(e));
            record(&core.worker_metrics[slot], |m| {
                if let Some(queue_ns) = queue {
                    m.observe_duration_ns(&format!("stage.{kind}.queue_ns"), queue_ns as f64);
                }
                m.observe_duration_ns(&format!("stage.{kind}.compute_ns"), compute_ns);
                m.observe_duration_ns(
                    &format!("stage.{kind}.encode_ns"),
                    encoded_at.saturating_sub(computed_at) as f64,
                );
            });
        }
        core.misses.fetch_add(1, Ordering::Relaxed);
        // Errors are not cached: a later identical request may be valid
        // context (e.g. after a config change) and they are cheap.
        if !matches!(response, Response::Error(_)) {
            core.cache.insert(job.key, Arc::clone(&encoded));
        }
        // The reactor may have closed the connection; nothing to do then.
        let _ = completions.send(Completion {
            conn: job.conn,
            reply: encoded,
            outcome,
            trace,
        });
    }
}

/// Runs one compute query against a shard's engine. Every arm is a thin
/// adapter over the deterministic `SweepEngine` entry points, so replies
/// are bit-identical to direct calls at any worker or shard count.
fn compute(core: &ShardCore, request: &Request) -> Response {
    let engine = &core.engine;
    let data = engine.data();
    match request {
        Request::OptimalSetting { budget } => Response::OptimalSetting(
            engine
                .optimal_series(*budget)
                .iter()
                .map(|c| WireChoice {
                    sample: c.sample,
                    index: c.index,
                    cpu_mhz: c.setting.cpu.mhz(),
                    mem_mhz: c.setting.mem.mhz(),
                    time_s: c.time.value(),
                    energy_j: c.energy.value(),
                    inefficiency: c.inefficiency.value(),
                })
                .collect(),
        ),
        Request::Cluster { budget, threshold } => {
            match engine.cluster_detail(*budget, *threshold) {
                Ok(clusters) => Response::Cluster(
                    clusters
                        .iter()
                        .map(|c| WireCluster {
                            sample: c.sample,
                            optimal_index: c.optimal.index,
                            members: c.member_indices().to_vec(),
                            cpu_mhz: c.cpu_range_mhz(data),
                            mem_mhz: c.mem_range_mhz(data),
                        })
                        .collect(),
                ),
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Request::StableRegions { budget, threshold } => {
            match engine.stable_detail(*budget, *threshold) {
                Ok(regions) => Response::StableRegions(
                    regions
                        .iter()
                        .map(|r| {
                            let chosen = r.chosen_setting(data);
                            WireRegion {
                                start: r.start,
                                end: r.end,
                                chosen_index: r.chosen_index,
                                cpu_mhz: chosen.cpu.mhz(),
                                mem_mhz: chosen.mem.mhz(),
                                available: r.available_indices().to_vec(),
                            }
                        })
                        .collect(),
                ),
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Request::GovernedReplay { governor, budget } => {
            let runner = match governor.as_str() {
                "ideal" => GovernedRun::without_overheads(),
                "paper" => GovernedRun::with_paper_overheads(),
                other => {
                    return Response::Error(format!(
                        "unknown governor {other:?}; expected \"ideal\" or \"paper\""
                    ));
                }
            };
            let report = engine
                .governed_reports(&runner, &core.trace, &[*budget])
                .pop()
                .expect("one budget yields one report");
            Response::GovernedReplay(wire_report(&report))
        }
        Request::PolicyReplay {
            policy,
            budget,
            scenario,
        } => {
            let Some(policy_box) = build_policy(policy) else {
                return Response::Error(format!(
                    "unknown policy {policy:?}; shipped policies: {}",
                    SHIPPED_POLICIES.join(", ")
                ));
            };
            let Some(scenario) = mcdvfs_workloads::Scenario::by_name(scenario) else {
                return Response::Error(format!(
                    "unknown scenario {scenario:?}; shipped scenarios: {}",
                    mcdvfs_workloads::Scenario::NAMES.join(", ")
                ));
            };
            // Ideal-oracle reference at the same budget, over this
            // tenant's own trace (the scenario's context stream cycles
            // over it, so any tenant length works).
            let reference = engine
                .governed_reports(&GovernedRun::without_overheads(), &core.trace, &[*budget])
                .pop()
                .expect("one budget yields one report");
            let mut governor = PolicyGovernor::new(policy_box, &scenario, data, *budget);
            let deadlines = governor.deadlines();
            let scorecard = PolicyScorecard::score(
                &GovernedRun::with_paper_overheads(),
                data,
                &core.trace,
                &mut governor,
                &deadlines,
                scenario.name(),
                &reference,
            );
            let counters = governor.counters();
            core.policy_decisions
                .fetch_add(counters.decisions, Ordering::Relaxed);
            core.policy_transitions
                .fetch_add(scorecard.transitions, Ordering::Relaxed);
            core.policy_deadline_misses
                .fetch_add(scorecard.deadline_misses, Ordering::Relaxed);
            core.policy_budget_exhaustions
                .fetch_add(counters.budget_exhaustions, Ordering::Relaxed);
            Response::PolicyReplay(WirePolicyReport {
                policy: policy.clone(),
                scenario: scorecard.scenario.clone(),
                decisions: counters.decisions,
                deadline_misses: scorecard.deadline_misses,
                budget_exhaustions: counters.budget_exhaustions,
                energy_vs_emin: scorecard.energy_vs_emin,
                energy_vs_oracle: scorecard.energy_vs_oracle,
                time_vs_oracle: scorecard.time_vs_oracle,
                report: wire_report(&scorecard.report),
            })
        }
        Request::Stats | Request::Health | Request::Telemetry | Request::TraceDump { .. } => {
            Response::Error(format!("{} is answered inline", request.kind()))
        }
    }
}

fn wire_report(r: &RunReport) -> WireReport {
    WireReport {
        governor: r.governor.clone(),
        work_time_s: r.work_time.value(),
        work_energy_j: r.work_energy.value(),
        tuning_time_s: r.tuning_time.value(),
        tuning_energy_j: r.tuning_energy.value(),
        transition_time_s: r.transition_time.value(),
        transition_energy_j: r.transition_energy.value(),
        transitions: r.transitions,
        cpu_transitions: r.cpu_transitions,
        mem_transitions: r.mem_transitions,
        searches: r.searches,
        total_emin_j: r.total_emin.value(),
    }
}
