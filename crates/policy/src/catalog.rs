//! The setting catalog: what a device knows about its own knobs.
//!
//! Policies never see a characterization grid; they see a
//! [`SettingCatalog`] — the device's own frequency tables, one ascending
//! axis per DVFS domain, with every cross-product setting addressed by a
//! flat index. Nothing in the catalog (or in the [`Policy`] trait that
//! consumes it) names CPU or memory: a domain is just an axis position, so
//! the same policies run unchanged on an N-domain device.
//!
//! For the two-domain grids of this reproduction the flat index order
//! matches [`FrequencyGrid`] exactly (first axis major), which is what lets
//! the governor adapter map decisions back onto grid settings without a
//! lookup table.
//!
//! [`Policy`]: crate::Policy

use mcdvfs_types::FrequencyGrid;

/// Per-domain frequency axes with flat mixed-radix setting indices.
#[derive(Debug, Clone, PartialEq)]
pub struct SettingCatalog {
    /// Ascending frequency steps (MHz) per domain, outermost axis first.
    axes: Vec<Vec<f64>>,
}

impl SettingCatalog {
    /// Builds a catalog from explicit per-domain axes.
    ///
    /// # Panics
    ///
    /// Panics when there are no axes, any axis is empty, or any axis is not
    /// strictly ascending and positive.
    #[must_use]
    pub fn new(axes: Vec<Vec<f64>>) -> Self {
        assert!(!axes.is_empty(), "a catalog needs at least one domain");
        for (d, axis) in axes.iter().enumerate() {
            assert!(!axis.is_empty(), "domain {d} has no frequency steps");
            assert!(
                axis.windows(2).all(|w| w[0] < w[1]) && axis[0] > 0.0,
                "domain {d} steps must be positive and strictly ascending"
            );
        }
        Self { axes }
    }

    /// Builds the catalog for a two-domain [`FrequencyGrid`]; flat indices
    /// coincide with the grid's.
    #[must_use]
    pub fn from_grid(grid: &FrequencyGrid) -> Self {
        Self::new(vec![
            grid.cpu_freqs().map(|f| f64::from(f.mhz())).collect(),
            grid.mem_freqs().map(|f| f64::from(f.mhz())).collect(),
        ])
    }

    /// Number of DVFS domains.
    #[must_use]
    pub fn n_domains(&self) -> usize {
        self.axes.len()
    }

    /// Number of settings (product of axis lengths).
    #[must_use]
    pub fn len(&self) -> usize {
        self.axes.iter().map(Vec::len).product()
    }

    /// Always `false`: construction rejects empty axes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of the all-minimum setting.
    #[must_use]
    pub fn slowest(&self) -> usize {
        0
    }

    /// Flat index of the all-maximum setting.
    #[must_use]
    pub fn fastest(&self) -> usize {
        self.len() - 1
    }

    /// Per-domain level indices of flat index `index` (outermost first).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    #[must_use]
    pub fn levels_of(&self, index: usize) -> Vec<usize> {
        assert!(index < self.len(), "setting index {index} out of bounds");
        let mut rest = index;
        let mut levels = vec![0usize; self.axes.len()];
        for (d, axis) in self.axes.iter().enumerate().rev() {
            levels[d] = rest % axis.len();
            rest /= axis.len();
        }
        levels
    }

    /// Flat index of per-domain `levels` (outermost first).
    ///
    /// # Panics
    ///
    /// Panics when the level count or any level is out of bounds.
    #[must_use]
    pub fn index_of_levels(&self, levels: &[usize]) -> usize {
        assert_eq!(levels.len(), self.axes.len(), "one level per domain");
        let mut index = 0usize;
        for (d, axis) in self.axes.iter().enumerate() {
            assert!(levels[d] < axis.len(), "domain {d} level out of bounds");
            index = index * axis.len() + levels[d];
        }
        index
    }

    /// Frequency (MHz) of `index` on `domain`.
    ///
    /// # Panics
    ///
    /// Panics when `index` or `domain` is out of bounds.
    #[must_use]
    pub fn frequency_mhz(&self, index: usize, domain: usize) -> f64 {
        self.axes[domain][self.levels_of(index)[domain]]
    }

    /// Mean over domains of the setting's frequency relative to that
    /// domain's maximum, in `(0, 1]`; `1.0` exactly at [`Self::fastest`].
    #[must_use]
    pub fn speed_factor(&self, index: usize) -> f64 {
        let levels = self.levels_of(index);
        let sum: f64 = self
            .axes
            .iter()
            .zip(&levels)
            .map(|(axis, &l)| axis[l] / axis[axis.len() - 1])
            .sum();
        sum / self.axes.len() as f64
    }

    /// Predicted execution time at `to`, given `time` observed at `from`:
    /// per-domain inverse-frequency scaling blended by `weights` (one per
    /// domain, summing to ~1 — the observed per-domain sensitivity).
    ///
    /// # Panics
    ///
    /// Panics when `weights` does not have one entry per domain.
    #[must_use]
    pub fn scale_time(&self, time: f64, from: usize, to: usize, weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.axes.len(), "one weight per domain");
        let (from_l, to_l) = (self.levels_of(from), self.levels_of(to));
        self.axes
            .iter()
            .enumerate()
            .map(|(d, axis)| weights[d] * time * axis[from_l[d]] / axis[to_l[d]])
            .sum()
    }

    /// Predicted energy at `to`, given `energy` observed at `from`:
    /// per-domain quadratic frequency scaling (dynamic energy ∝ V²·f per
    /// unit work ≈ f²) blended by `weights`.
    ///
    /// # Panics
    ///
    /// Panics when `weights` does not have one entry per domain.
    #[must_use]
    pub fn scale_energy(&self, energy: f64, from: usize, to: usize, weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.axes.len(), "one weight per domain");
        let (from_l, to_l) = (self.levels_of(from), self.levels_of(to));
        self.axes
            .iter()
            .enumerate()
            .map(|(d, axis)| {
                let r = axis[to_l[d]] / axis[from_l[d]];
                weights[d] * energy * r * r
            })
            .sum()
    }

    /// One hysteresis step from `from` toward `target`: every domain moves
    /// at most one level toward the target's level.
    #[must_use]
    pub fn step_toward(&self, from: usize, target: usize) -> usize {
        let (mut levels, target_l) = (self.levels_of(from), self.levels_of(target));
        for (d, level) in levels.iter_mut().enumerate() {
            *level = match (*level).cmp(&target_l[d]) {
                std::cmp::Ordering::Less => *level + 1,
                std::cmp::Ordering::Greater => *level - 1,
                std::cmp::Ordering::Equal => *level,
            };
        }
        self.index_of_levels(&levels)
    }

    /// The fastest setting whose every domain runs at no more than `frac`
    /// of that domain's maximum frequency (`frac` clamped to `[0, 1]`);
    /// domains with no step that low fall back to their minimum.
    #[must_use]
    pub fn index_at_fraction(&self, frac: f64) -> usize {
        let frac = frac.clamp(0.0, 1.0);
        let levels: Vec<usize> = self
            .axes
            .iter()
            .map(|axis| {
                let max = axis[axis.len() - 1];
                axis.iter()
                    .rposition(|&f| f / max <= frac + 1e-12)
                    .unwrap_or(0)
            })
            .collect();
        self.index_of_levels(&levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> SettingCatalog {
        SettingCatalog::from_grid(&FrequencyGrid::coarse())
    }

    #[test]
    fn indices_coincide_with_the_grid() {
        let grid = FrequencyGrid::coarse();
        let c = SettingCatalog::from_grid(&grid);
        assert_eq!(c.len(), grid.len());
        assert_eq!(c.n_domains(), 2);
        for i in 0..grid.len() {
            let s = grid.get(i).unwrap();
            assert_eq!(c.frequency_mhz(i, 0), f64::from(s.cpu.mhz()), "cpu @ {i}");
            assert_eq!(c.frequency_mhz(i, 1), f64::from(s.mem.mhz()), "mem @ {i}");
        }
        assert_eq!(grid.get(c.fastest()).unwrap(), grid.max_setting());
        assert_eq!(grid.get(c.slowest()).unwrap(), grid.min_setting());
    }

    #[test]
    fn levels_round_trip() {
        let c = catalog();
        for i in 0..c.len() {
            assert_eq!(c.index_of_levels(&c.levels_of(i)), i);
        }
    }

    #[test]
    fn speed_factor_is_one_only_at_fastest() {
        let c = catalog();
        assert!((c.speed_factor(c.fastest()) - 1.0).abs() < 1e-12);
        for i in 0..c.len() - 1 {
            assert!(c.speed_factor(i) < 1.0, "index {i}");
        }
    }

    #[test]
    fn scaling_is_identity_on_the_same_setting() {
        let c = catalog();
        let w = [0.6, 0.4];
        for i in [0, 7, c.fastest()] {
            assert!((c.scale_time(2.0, i, i, &w) - 2.0).abs() < 1e-12);
            assert!((c.scale_energy(3.0, i, i, &w) - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn slower_settings_predict_longer_and_cheaper() {
        let c = catalog();
        let w = [0.5, 0.5];
        let (fast, slow) = (c.fastest(), c.slowest());
        assert!(c.scale_time(1.0, fast, slow, &w) > 1.0);
        assert!(c.scale_energy(1.0, fast, slow, &w) < 1.0);
    }

    #[test]
    fn step_toward_moves_one_level_per_domain() {
        let c = catalog();
        let from = c.fastest();
        let target = c.slowest();
        let next = c.step_toward(from, target);
        let (fl, nl) = (c.levels_of(from), c.levels_of(next));
        for d in 0..c.n_domains() {
            assert_eq!(nl[d] + 1, fl[d], "domain {d} steps down by one");
        }
        assert_eq!(c.step_toward(from, from), from);
    }

    #[test]
    fn index_at_fraction_hits_the_extremes() {
        let c = catalog();
        assert_eq!(c.index_at_fraction(0.0), c.slowest());
        assert_eq!(c.index_at_fraction(1.0), c.fastest());
        assert_eq!(c.index_at_fraction(-3.0), c.slowest());
        assert_eq!(c.index_at_fraction(9.0), c.fastest());
    }

    #[test]
    fn generalizes_to_three_domains() {
        let c = SettingCatalog::new(vec![
            vec![100.0, 200.0],
            vec![50.0, 100.0, 150.0],
            vec![10.0, 20.0],
        ]);
        assert_eq!(c.len(), 12);
        assert_eq!(c.n_domains(), 3);
        for i in 0..c.len() {
            assert_eq!(c.index_of_levels(&c.levels_of(i)), i);
        }
        assert_eq!(c.levels_of(c.fastest()), vec![1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn non_ascending_axis_panics() {
        let _ = SettingCatalog::new(vec![vec![200.0, 100.0]]);
    }
}
