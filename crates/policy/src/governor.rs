//! The environment adapter: runs a [`Policy`] as a core `Governor`.
//!
//! The adapter is the *device side* of the partial-information contract.
//! It owns everything a policy is not allowed to see — the characterized
//! trace (only to translate a scenario's deadline slacks into absolute
//! deadlines and its budget into an energy envelope, exactly what a QoS
//! layer supplies on real hardware), the frequency grid, and the previous
//! interval's [`Observation`] — and narrows all of it into the
//! [`StepContext`]/[`Feedback`] the [`Policy`] trait permits. The policy's
//! flat index decisions map back onto grid settings one-to-one.

use crate::catalog::SettingCatalog;
use crate::policy::{Feedback, Policy, PolicyDecision, StepContext};
use mcdvfs_core::governor::{Decision, Governor, Observation};
use mcdvfs_core::InefficiencyBudget;
use mcdvfs_sim::CharacterizationGrid;
use mcdvfs_types::{fnv1a64, FreqSetting, FrequencyGrid, Seconds};
use mcdvfs_workloads::Scenario;

/// Decision counters accumulated across one policy replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PolicyCounters {
    /// Intervals decided.
    pub decisions: u64,
    /// Decisions where no setting fit the remaining energy envelope.
    pub budget_exhaustions: u64,
}

/// Adapts a [`Policy`] to the [`Governor`] interface of the governed
/// runner, so policies get the same ledger-verified accounting as oracles.
pub struct PolicyGovernor {
    policy: Box<dyn Policy>,
    name: String,
    grid: FrequencyGrid,
    catalog: SettingCatalog,
    contexts: Vec<StepContext>,
    counters: PolicyCounters,
}

impl PolicyGovernor {
    /// Builds the adapter for one replay of `policy` under `scenario` over
    /// the characterized trace `data` with inefficiency budget `budget`.
    ///
    /// The scenario's per-interval deadline slack becomes an absolute
    /// deadline (slack × the interval's time at the fastest setting); a
    /// bounded budget becomes a flat per-interval energy allowance of
    /// `budget × Emin / intervals`. Scenario context cycles when the trace
    /// is longer than the scenario.
    ///
    /// # Panics
    ///
    /// Panics when `data` has no samples.
    #[must_use]
    pub fn new(
        policy: Box<dyn Policy>,
        scenario: &Scenario,
        data: &CharacterizationGrid,
        budget: InefficiencyBudget,
    ) -> Self {
        let n = data.n_samples();
        assert!(n > 0, "cannot replay a policy over an empty trace");
        let grid = data.grid();
        let fastest = grid.max_setting();
        let allowance = budget
            .bound()
            .map_or(f64::INFINITY, |b| b * data.total_emin().value() / n as f64);
        let contexts = (0..n)
            .map(|s| {
                let step = scenario.context(s);
                let fast_time = data
                    .measurement_at(s, fastest)
                    .expect("maximum setting is on the grid")
                    .time
                    .value();
                StepContext {
                    battery_fraction: step.battery_fraction,
                    temperature_c: step.temperature_c,
                    load: step.load,
                    deadline: step.deadline_slack * fast_time,
                    energy_allowance: allowance,
                }
            })
            .collect();
        let name = format!("policy-{}@{}", policy.name(), scenario.name());
        Self {
            policy,
            name,
            grid,
            catalog: SettingCatalog::from_grid(&grid),
            contexts,
            counters: PolicyCounters::default(),
        }
    }

    /// The absolute per-interval deadlines this replay enforces (for
    /// scorecard miss accounting).
    #[must_use]
    pub fn deadlines(&self) -> Vec<Seconds> {
        self.contexts
            .iter()
            .map(|c| Seconds::new(c.deadline))
            .collect()
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn counters(&self) -> PolicyCounters {
        self.counters
    }

    /// FNV-1a hash of the policy name — the cache key component serve uses
    /// for `policy_replay` replies.
    #[must_use]
    pub fn policy_hash(&self) -> u64 {
        fnv1a64(self.policy.name().as_bytes())
    }

    fn feedback_from(&self, prev: &Observation) -> Feedback {
        let index = self
            .grid
            .index_of(prev.setting)
            .expect("observed setting came from this grid");
        let energy = prev.measurement.energy().value();
        let n = self.catalog.n_domains();
        let domain_weights = if energy > 0.0 {
            // Rail-level attribution: the first axis is the CPU domain,
            // the second the memory domain.
            vec![
                prev.measurement.cpu_energy.value() / energy,
                prev.measurement.mem_energy.value() / energy,
            ]
        } else {
            vec![1.0 / n as f64; n]
        };
        Feedback {
            index,
            time: prev.measurement.time.value(),
            energy,
            domain_weights,
        }
    }
}

impl std::fmt::Debug for PolicyGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyGovernor")
            .field("name", &self.name)
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

impl Governor for PolicyGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, next_sample: usize, prev: Option<&Observation>) -> Decision {
        let feedback = prev.map(|o| self.feedback_from(o));
        let ctx = self.contexts[next_sample];
        let PolicyDecision {
            index,
            evaluated,
            budget_exhausted,
        } = self.policy.decide(&self.catalog, &ctx, feedback.as_ref());
        self.counters.decisions += 1;
        self.counters.budget_exhaustions += u64::from(budget_exhausted);
        let setting: FreqSetting = self
            .grid
            .get(index)
            .expect("policy returned an in-catalog index");
        Decision {
            setting,
            settings_evaluated: evaluated,
            region_start: evaluated > 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::build_policy;
    use mcdvfs_core::GovernedRun;
    use mcdvfs_sim::System;
    use mcdvfs_types::FrequencyGrid;

    fn characterized(scenario: &Scenario) -> CharacterizationGrid {
        CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            scenario.trace(),
            FrequencyGrid::coarse(),
        )
    }

    #[test]
    fn policies_replay_through_the_governed_runner() {
        let scenario = Scenario::load_burst();
        let data = characterized(&scenario);
        let budget = InefficiencyBudget::bounded(1.3).unwrap();
        for name in crate::SHIPPED_POLICIES {
            let mut governor =
                PolicyGovernor::new(build_policy(name).unwrap(), &scenario, &data, budget);
            let report =
                GovernedRun::with_paper_overheads().execute(&data, scenario.trace(), &mut governor);
            assert_eq!(report.governor, format!("policy-{name}@load_burst"));
            assert_eq!(report.sample_settings.len(), scenario.len());
            let counters = governor.counters();
            assert_eq!(counters.decisions, scenario.len() as u64);
        }
    }

    #[test]
    fn deadlines_align_with_the_trace_and_are_positive() {
        let scenario = Scenario::battery_drain();
        let data = characterized(&scenario);
        let governor = PolicyGovernor::new(
            build_policy("deadline").unwrap(),
            &scenario,
            &data,
            InefficiencyBudget::bounded(1.3).unwrap(),
        );
        let deadlines = governor.deadlines();
        assert_eq!(deadlines.len(), data.n_samples());
        assert!(deadlines.iter().all(|d| d.value() > 0.0));
    }

    #[test]
    fn policy_hash_is_the_fnv_of_the_policy_name() {
        let scenario = Scenario::load_burst();
        let data = characterized(&scenario);
        let governor = PolicyGovernor::new(
            build_policy("reactive").unwrap(),
            &scenario,
            &data,
            InefficiencyBudget::Unconstrained,
        );
        assert_eq!(governor.policy_hash(), fnv1a64(b"reactive"));
    }
}
