//! The online policy trait and the three shipped policies.
//!
//! A [`Policy`] is the partial-information counterpart of an oracle
//! governor: each interval it sees only the device's own
//! [`SettingCatalog`], the current [`StepContext`] (battery, temperature,
//! load, deadline, energy allowance), and [`Feedback`] from the *previous*
//! interval — never the characterization grid, never the future. Decisions
//! are flat catalog indices, so policies are agnostic to how many DVFS
//! domains the device has.
//!
//! Predictions extrapolate the last observation by per-domain frequency
//! scaling ([`SettingCatalog::scale_time`] /
//! [`SettingCatalog::scale_energy`]), blended by the per-domain energy
//! attribution the feedback carries. Everything is pure `f64` arithmetic
//! over fixed iteration orders, so every policy is bit-deterministic.

use crate::catalog::SettingCatalog;
use mcdvfs_core::ratelimit::RateLimiter;
use mcdvfs_types::{Joules, Seconds, Watts};

/// What the device observed about the previous interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Feedback {
    /// Catalog index the interval executed at.
    pub index: usize,
    /// Measured execution time, seconds.
    pub time: f64,
    /// Measured energy, joules.
    pub energy: f64,
    /// Per-domain energy attribution (one weight per catalog domain,
    /// summing to 1) — the device's rail meters, not oracle knowledge.
    pub domain_weights: Vec<f64>,
}

/// The device context an online policy may consult for one interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepContext {
    /// Remaining battery charge fraction, `[0, 1]`.
    pub battery_fraction: f64,
    /// Die temperature, °C.
    pub temperature_c: f64,
    /// Offered utilisation, `[0, 1]`.
    pub load: f64,
    /// Absolute deadline for this interval, seconds.
    pub deadline: f64,
    /// Energy granted to this interval, joules (∞ when unconstrained).
    pub energy_allowance: f64,
}

/// One policy decision: a catalog index plus accounting hints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyDecision {
    /// Chosen flat catalog index.
    pub index: usize,
    /// Candidate settings the policy evaluated (0 = reused without search;
    /// charged as tuning overhead by the governed runner).
    pub evaluated: usize,
    /// `true` when no setting fit the remaining energy envelope and the
    /// policy fell back to its cheapest prediction.
    pub budget_exhausted: bool,
}

/// A deterministic online setting-selection policy.
///
/// Contract: `decide` is called once per interval in trace order with no
/// lookahead; `feedback` is `None` only on the first interval. A policy
/// must be a pure function of its own state and these arguments — no
/// clocks, no randomness — so replays are bit-identical.
pub trait Policy {
    /// Stable policy name (used for reporting and cache hashing).
    fn name(&self) -> &str;

    /// Picks the catalog index for the next interval.
    fn decide(
        &mut self,
        catalog: &SettingCatalog,
        ctx: &StepContext,
        feedback: Option<&Feedback>,
    ) -> PolicyDecision;
}

fn decision(index: usize, evaluated: usize) -> PolicyDecision {
    PolicyDecision {
        index,
        evaluated,
        budget_exhausted: false,
    }
}

/// Cheapest setting whose predicted time meets the deadline, falling back
/// to the fastest setting when none does (SNIPPETS.md `selectForDeadline`).
#[derive(Debug, Clone, Default)]
pub struct DeadlineDriven {
    _private: (),
}

impl DeadlineDriven {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for DeadlineDriven {
    fn name(&self) -> &str {
        "deadline"
    }

    fn decide(
        &mut self,
        catalog: &SettingCatalog,
        ctx: &StepContext,
        feedback: Option<&Feedback>,
    ) -> PolicyDecision {
        let Some(fb) = feedback else {
            // No observation yet: the only deadline-safe choice is fastest.
            return decision(catalog.fastest(), catalog.len());
        };
        let mut best: Option<(usize, f64)> = None;
        for i in 0..catalog.len() {
            let t = catalog.scale_time(fb.time, fb.index, i, &fb.domain_weights);
            if t > ctx.deadline {
                continue;
            }
            let e = catalog.scale_energy(fb.energy, fb.index, i, &fb.domain_weights);
            if best.is_none_or(|(_, be)| e < be) {
                best = Some((i, e));
            }
        }
        let index = best.map_or(catalog.fastest(), |(i, _)| i);
        decision(index, catalog.len())
    }
}

/// Fastest setting whose predicted energy fits the remaining envelope,
/// with unspent allowance carried over — and overdraft carried forward —
/// across intervals (SNIPPETS.md `selectForEnergy`; Trehan et al.'s
/// energy-budgeted selection).
#[derive(Debug, Clone, Default)]
pub struct EnergyBudgetDriven {
    carryover: f64,
}

impl EnergyBudgetDriven {
    /// Unspent allowance may bank up to this many intervals' worth.
    pub const MAX_BANK_INTERVALS: f64 = 4.0;

    /// Creates the policy with an empty bank.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for EnergyBudgetDriven {
    fn name(&self) -> &str {
        "energy_budget"
    }

    fn decide(
        &mut self,
        catalog: &SettingCatalog,
        ctx: &StepContext,
        feedback: Option<&Feedback>,
    ) -> PolicyDecision {
        self.carryover += ctx.energy_allowance;
        if let Some(fb) = feedback {
            self.carryover -= fb.energy;
        }
        if ctx.energy_allowance.is_finite() {
            self.carryover = self
                .carryover
                .min(Self::MAX_BANK_INTERVALS * ctx.energy_allowance);
        }
        let Some(fb) = feedback else {
            // No observation to predict from: spend nothing we cannot
            // account for and start at the slowest setting.
            return decision(catalog.slowest(), catalog.len());
        };
        let mut best_fit: Option<(usize, f64)> = None;
        let mut cheapest: (usize, f64) = (catalog.slowest(), f64::INFINITY);
        for i in 0..catalog.len() {
            let e = catalog.scale_energy(fb.energy, fb.index, i, &fb.domain_weights);
            if e < cheapest.1 {
                cheapest = (i, e);
            }
            if e <= self.carryover {
                let s = catalog.speed_factor(i);
                if best_fit.is_none_or(|(_, bs)| s > bs) {
                    best_fit = Some((i, s));
                }
            }
        }
        match best_fit {
            Some((i, _)) => decision(i, catalog.len()),
            None => PolicyDecision {
                index: cheapest.0,
                evaluated: catalog.len(),
                budget_exhausted: true,
            },
        }
    }
}

/// Hysteresis-banded reaction to battery/thermal/load context with
/// rate-limited, one-level-per-domain transitions (Rizvandi-style monotone
/// stepping). The battery power cap is computed through
/// [`mcdvfs_core::ratelimit::RateLimiter`], the same per-window energy
/// accounting the rate-limited replay uses.
#[derive(Debug, Clone)]
pub struct Reactive {
    min_dwell: usize,
    dwell: usize,
    current: Option<usize>,
    target_frac: f64,
}

impl Default for Reactive {
    fn default() -> Self {
        Self::new()
    }
}

impl Reactive {
    /// Load above which the policy targets full speed.
    pub const LOAD_HIGH: f64 = 0.75;
    /// Load below which the policy targets the low band.
    pub const LOAD_LOW: f64 = 0.35;
    /// Intervals a chosen setting must dwell before the next transition.
    pub const MIN_DWELL: usize = 3;
    /// Idle draw assumed when deriving the power cap from the allowance.
    pub const IDLE_POWER_W: f64 = 0.01;

    /// Creates the policy with the default dwell of [`Self::MIN_DWELL`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_min_dwell(Self::MIN_DWELL)
    }

    /// Creates the policy with an explicit transition rate limit: at most
    /// one transition per `min_dwell` intervals (≥ 1).
    #[must_use]
    pub fn with_min_dwell(min_dwell: usize) -> Self {
        Self {
            min_dwell: min_dwell.max(1),
            dwell: 0,
            current: None,
            target_frac: 1.0,
        }
    }

    /// Speed-fraction ceiling imposed by context bands: thermal throttle
    /// levels and battery-saver levels, whichever is tightest.
    fn context_cap(ctx: &StepContext) -> f64 {
        let thermal: f64 = if ctx.temperature_c >= 85.0 {
            0.55
        } else if ctx.temperature_c >= 70.0 {
            0.8
        } else {
            1.0
        };
        let battery = if ctx.battery_fraction < 0.15 {
            0.5
        } else if ctx.battery_fraction < 0.3 {
            0.75
        } else {
            1.0
        };
        thermal.min(battery)
    }

    /// Average-power cap for the interval, derived from the energy
    /// allowance over the deadline window via [`RateLimiter`]; `None` when
    /// the run is unconstrained.
    fn power_cap(ctx: &StepContext) -> Option<f64> {
        if !ctx.energy_allowance.is_finite() {
            return None;
        }
        RateLimiter::new(
            Joules::new(ctx.energy_allowance),
            Seconds::new(ctx.deadline),
            Watts::new(Self::IDLE_POWER_W),
        )
        .ok()
        .map(|limiter| limiter.average_power_cap().value())
    }
}

impl Policy for Reactive {
    fn name(&self) -> &str {
        "reactive"
    }

    fn decide(
        &mut self,
        catalog: &SettingCatalog,
        ctx: &StepContext,
        feedback: Option<&Feedback>,
    ) -> PolicyDecision {
        let Some(current) = self.current else {
            // Boot at the platform's power-on setting; the runner boots the
            // controller at maximum, so this avoids a gratuitous first hop.
            self.current = Some(catalog.fastest());
            return decision(catalog.fastest(), catalog.len());
        };

        // Hysteresis: only loads outside the band move the target.
        if ctx.load >= Self::LOAD_HIGH {
            self.target_frac = 1.0;
        } else if ctx.load <= Self::LOAD_LOW {
            self.target_frac = 0.45;
        }
        let mut frac = self.target_frac.min(Self::context_cap(ctx));

        // Observed power above the rate-limited cap forces a step down
        // regardless of load.
        if let (Some(cap), Some(fb)) = (Self::power_cap(ctx), feedback) {
            if fb.time > 0.0 && fb.energy / fb.time > cap {
                let below = catalog.speed_factor(current) - 1.0 / catalog.len() as f64;
                frac = frac.min(below.max(0.0));
            }
        }

        let target = catalog.index_at_fraction(frac);
        self.dwell += 1;
        let mut next = current;
        if target != current && self.dwell >= self.min_dwell {
            next = catalog.step_toward(current, target);
            if next != current {
                self.dwell = 0;
            }
        }
        self.current = Some(next);
        let evaluated = usize::from(next != current) * catalog.n_domains();
        decision(next, evaluated)
    }
}

/// Names of the shipped policies, in presentation order.
pub const SHIPPED_POLICIES: [&str; 3] = ["deadline", "energy_budget", "reactive"];

/// Constructs a shipped policy by name with its default knobs, or `None`
/// for an unknown name.
#[must_use]
pub fn build_policy(name: &str) -> Option<Box<dyn Policy>> {
    match name {
        "deadline" => Some(Box::new(DeadlineDriven::new())),
        "energy_budget" => Some(Box::new(EnergyBudgetDriven::new())),
        "reactive" => Some(Box::new(Reactive::new())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdvfs_types::FrequencyGrid;

    fn catalog() -> SettingCatalog {
        SettingCatalog::from_grid(&FrequencyGrid::coarse())
    }

    fn ctx(deadline: f64, allowance: f64) -> StepContext {
        StepContext {
            battery_fraction: 0.8,
            temperature_c: 45.0,
            load: 0.5,
            deadline,
            energy_allowance: allowance,
        }
    }

    fn fb(catalog: &SettingCatalog, index: usize, time: f64, energy: f64) -> Feedback {
        let n = catalog.n_domains();
        let mut domain_weights = vec![0.4 / (n - 1) as f64; n];
        domain_weights[0] = 0.6;
        Feedback {
            index,
            time,
            energy,
            domain_weights,
        }
    }

    #[test]
    fn deadline_driven_starts_fastest_then_relaxes() {
        let c = catalog();
        let mut p = DeadlineDriven::new();
        let first = p.decide(&c, &ctx(1.0, f64::INFINITY), None);
        assert_eq!(first.index, c.fastest());
        // Loose deadline: a slower, cheaper setting is predicted feasible.
        let f = fb(&c, c.fastest(), 0.01, 0.05);
        let relaxed = p.decide(&c, &ctx(0.05, f64::INFINITY), Some(&f));
        assert!(relaxed.index < c.fastest());
        // Impossible deadline: falls back to fastest.
        let tight = p.decide(&c, &ctx(1e-9, f64::INFINITY), Some(&f));
        assert_eq!(tight.index, c.fastest());
        assert!(!tight.budget_exhausted);
    }

    #[test]
    fn energy_budget_spends_what_the_envelope_allows() {
        let c = catalog();
        let mut p = EnergyBudgetDriven::new();
        let first = p.decide(&c, &ctx(1.0, 1.0), None);
        assert_eq!(first.index, c.slowest(), "starts conservatively");
        // Generous allowance: runs fast.
        let f = fb(&c, c.slowest(), 0.05, 0.02);
        let rich = p.decide(&c, &ctx(1.0, 10.0), Some(&f));
        assert_eq!(rich.index, c.fastest());
        // Starved allowance after the bank drains: exhausts.
        let mut starving = EnergyBudgetDriven::new();
        let costly = fb(&c, c.slowest(), 0.05, 5.0);
        let d = starving.decide(&c, &ctx(1.0, 1e-6), Some(&costly));
        assert!(d.budget_exhausted);
        assert_eq!(d.index, c.slowest(), "cheapest prediction is slowest");
    }

    #[test]
    fn energy_budget_banks_carryover_but_caps_it() {
        let c = catalog();
        let mut p = EnergyBudgetDriven::new();
        let f = fb(&c, c.slowest(), 0.05, 0.1);
        for _ in 0..20 {
            let _ = p.decide(&c, &ctx(1.0, 1.0), Some(&f));
        }
        assert!(p.carryover <= EnergyBudgetDriven::MAX_BANK_INTERVALS * 1.0 + 1e-12);
        assert!(p.carryover > 1.0, "unspent allowance accumulated");
    }

    #[test]
    fn reactive_rate_limits_transitions() {
        let c = catalog();
        let mut p = Reactive::new();
        let mut low = ctx(1.0, f64::INFINITY);
        low.load = 0.1;
        let mut last = p.decide(&c, &low, None).index;
        let mut transitions = 0;
        for i in 0..12 {
            let f = fb(&c, last, 0.01, 0.02);
            let d = p.decide(&c, &low, Some(&f));
            if d.index != last {
                transitions += 1;
            } else {
                assert_eq!(d.evaluated, 0, "reuse is free at step {i}");
            }
            last = d.index;
        }
        assert!(transitions >= 1, "low load must step down eventually");
        assert!(
            transitions <= 12 / Reactive::MIN_DWELL + 1,
            "dwell bounds the transition rate: {transitions}"
        );
    }

    #[test]
    fn reactive_thermal_band_caps_speed() {
        let c = catalog();
        let mut p = Reactive::with_min_dwell(1);
        let mut hot = ctx(1.0, f64::INFINITY);
        hot.load = 0.95;
        hot.temperature_c = 90.0;
        let mut last = p.decide(&c, &hot, None).index;
        for _ in 0..c.len() {
            let f = fb(&c, last, 0.01, 0.02);
            last = p.decide(&c, &hot, Some(&f)).index;
        }
        assert!(
            c.speed_factor(last) <= 0.55 + 1e-9,
            "throttled to the hot band: {}",
            c.speed_factor(last)
        );
    }

    #[test]
    fn shipped_policy_factory_knows_every_name() {
        for name in SHIPPED_POLICIES {
            let p = build_policy(name).expect("shipped policy");
            assert_eq!(p.name(), name);
        }
        assert!(build_policy("nope").is_none());
    }
}
