//! Online adaptive governor policies for the `mcdvfs` workspace.
//!
//! Every governor in `mcdvfs-core` is an *oracle*: it replays a
//! characterization grid with perfect knowledge. This crate is the other
//! half of the paper's story — the runtime side, where an
//! energy-constrained device must pick `(cpu, mem)` settings **online**,
//! one interval at a time, from partial information:
//!
//! * the device's own frequency tables ([`SettingCatalog`], one axis per
//!   DVFS domain, addressed by flat index so N-domain devices work
//!   unchanged);
//! * the context it can sense ([`StepContext`]: battery, temperature,
//!   load, the interval deadline and energy allowance);
//! * what it measured about the *previous* interval ([`Feedback`]).
//!
//! Three policies ship behind the pluggable [`Policy`] trait:
//! [`DeadlineDriven`] (cheapest predicted-feasible setting, fastest as
//! fallback), [`EnergyBudgetDriven`] (fastest setting inside the remaining
//! energy envelope, with carry-over banking), and [`Reactive`]
//! (hysteresis-banded context adaptation with rate-limited one-step
//! transitions). [`PolicyGovernor`] adapts any policy to the
//! `mcdvfs-core` governor interface, so replays get the same
//! ledger-verified accounting — and the same oracle-gap scoring via
//! `PolicyScorecard` — as every oracle governor.
//!
//! # Examples
//!
//! ```
//! use mcdvfs_core::{GovernedRun, InefficiencyBudget};
//! use mcdvfs_policy::{build_policy, PolicyGovernor};
//! use mcdvfs_sim::{CharacterizationGrid, System};
//! use mcdvfs_types::FrequencyGrid;
//! use mcdvfs_workloads::Scenario;
//!
//! let scenario = Scenario::load_burst();
//! let data = CharacterizationGrid::characterize(
//!     &System::galaxy_nexus_class(),
//!     scenario.trace(),
//!     FrequencyGrid::coarse(),
//! );
//! let budget = InefficiencyBudget::bounded(1.3).unwrap();
//! let mut governor =
//!     PolicyGovernor::new(build_policy("reactive").unwrap(), &scenario, &data, budget);
//! let report = GovernedRun::with_paper_overheads().execute(&data, scenario.trace(), &mut governor);
//! assert_eq!(report.sample_settings.len(), scenario.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod governor;
mod policy;

pub use catalog::SettingCatalog;
pub use governor::{PolicyCounters, PolicyGovernor};
pub use policy::{
    build_policy, DeadlineDriven, EnergyBudgetDriven, Feedback, Policy, PolicyDecision, Reactive,
    StepContext, SHIPPED_POLICIES,
};
