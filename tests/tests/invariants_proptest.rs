//! Property-based invariants over randomized workloads, grids and budgets.
//!
//! Seeded [`SplitMix64`] case generators replace the external `proptest`
//! dependency (the build must work offline): each property loops over a
//! fixed number of independently generated cases, and every assertion
//! message carries the case seed so a failure reproduces exactly.

use mcdvfs_core::{cluster_series, stable_regions, InefficiencyBudget, OptimalFinder};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::{FreqSetting, FrequencyGrid, SampleCharacteristics, SplitMix64};
use mcdvfs_workloads::{Phase, PhaseScript, SampleTrace};

const CASES: u64 = 48;

/// Random but valid sample characteristics.
fn arb_chars(rng: &mut SplitMix64) -> SampleCharacteristics {
    SampleCharacteristics {
        base_cpi: rng.range_f64(0.4, 2.5),
        mpki: rng.range_f64(0.0, 35.0),
        write_frac: rng.range_f64(0.0, 1.0),
        row_hit_rate: rng.range_f64(0.05, 0.95),
        mlp: rng.range_f64(1.0, 4.0),
        stall_exposure: rng.range_f64(0.1, 1.0),
        activity_factor: rng.range_f64(0.2, 1.0),
    }
}

/// Short random traces keep the grid characterization fast.
fn arb_trace(rng: &mut SplitMix64) -> SampleTrace {
    let n = rng.range_usize(2, 6);
    let samples = (0..n).map(|_| arb_chars(rng)).collect();
    SampleTrace::new("prop", samples)
}

/// A small random sub-grid of the platform's range.
fn arb_grid(rng: &mut SplitMix64) -> FrequencyGrid {
    let csteps = rng.range_usize(1, 5) as u32;
    let msteps = rng.range_usize(1, 4) as u32;
    FrequencyGrid::new(200, 200 + 200 * csteps, 200, 200, 200 + 200 * msteps, 200)
        .expect("valid sub-grid")
}

fn characterize(trace: &SampleTrace, grid: FrequencyGrid) -> CharacterizationGrid {
    CharacterizationGrid::characterize(&System::galaxy_nexus_class(), trace, grid)
}

/// Inefficiency is ≥ 1 for every sample at every setting.
#[test]
fn inefficiency_is_at_least_one() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xA11C_E000 ^ case);
        let data = characterize(&arb_trace(&mut rng), arb_grid(&mut rng));
        for s in 0..data.n_samples() {
            let emin = data.sample_emin(s);
            for m in data.sample_row(s) {
                assert!(m.energy() / emin >= 1.0 - 1e-12, "case {case}");
            }
        }
    }
}

/// The optimal choice dominates every feasible setting (within the tie
/// tolerance) and respects the budget (within noise tolerance).
#[test]
fn optimal_dominates_feasible() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xB0B0_0000 ^ case);
        let data = characterize(&arb_trace(&mut rng), arb_grid(&mut rng));
        let budget_v = rng.range_f64(1.0, 2.0);
        let budget = InefficiencyBudget::bounded(budget_v).unwrap();
        let finder = OptimalFinder::new(budget);
        for s in 0..data.n_samples() {
            let choice = finder.find(&data, s);
            assert!(
                choice.inefficiency.value()
                    <= budget_v * (1.0 + InefficiencyBudget::NOISE_TOLERANCE) + 1e-9,
                "case {case} sample {s}"
            );
            for i in finder.feasible(&data, s) {
                let t = data.measurement(s, i).time.value();
                assert!(
                    choice.time.value() <= t * (1.0 + 0.005) + 1e-15,
                    "case {case} sample {s}"
                );
            }
        }
    }
}

/// Clusters contain their optimal; members respect budget and threshold;
/// larger thresholds produce supersets.
#[test]
fn cluster_invariants() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xC105_7E25 ^ case);
        let data = characterize(&arb_trace(&mut rng), arb_grid(&mut rng));
        let budget_v = rng.range_f64(1.0, 1.8);
        let budget = InefficiencyBudget::bounded(budget_v).unwrap();
        let tight = cluster_series(&data, budget, 0.01).unwrap();
        let loose = cluster_series(&data, budget, 0.05).unwrap();
        for (a, b) in tight.iter().zip(&loose) {
            assert!(a.contains_index(a.optimal.index), "case {case}");
            assert!(b.len() >= a.len(), "case {case}");
            for &i in a.member_indices() {
                assert!(b.contains_index(i), "case {case}");
                let loss =
                    1.0 - a.optimal.time.value() / data.measurement(a.sample, i).time.value();
                assert!(loss <= 0.01 + 1e-9, "case {case}: loss {loss}");
            }
        }
    }
}

/// Stable regions partition the trace, and every region's chosen setting
/// is in every covered sample's cluster.
#[test]
fn stable_regions_partition_and_cover() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x57AB_1E00 ^ case);
        let data = characterize(&arb_trace(&mut rng), arb_grid(&mut rng));
        let budget = InefficiencyBudget::bounded(1.3).unwrap();
        let clusters = cluster_series(&data, budget, 0.03).unwrap();
        let regions = stable_regions(&clusters);
        assert_eq!(regions[0].start, 0, "case {case}");
        assert_eq!(regions.last().unwrap().end, data.n_samples(), "case {case}");
        for w in regions.windows(2) {
            assert_eq!(w[0].end, w[1].start, "case {case}");
        }
        for r in &regions {
            assert!(!r.is_empty(), "case {case}: empty region");
            for c in &clusters[r.start..r.end] {
                assert!(c.contains_index(r.chosen_index), "case {case}");
            }
        }
    }
}

/// Execution time is monotone non-increasing in each frequency domain
/// separately.
#[test]
fn time_monotone_in_each_domain() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x7131_3131 ^ case);
        let chars = arb_chars(&mut rng);
        let system = System::galaxy_nexus_class().with_measurement_noise(0.0);
        let mut prev = f64::INFINITY;
        for cpu in (100..=1000).step_by(100) {
            let t = system
                .simulate_sample(&chars, FreqSetting::from_mhz(cpu, 400))
                .time
                .value();
            assert!(t <= prev * (1.0 + 1e-12), "case {case} cpu {cpu}");
            prev = t;
        }
        let mut prev = f64::INFINITY;
        for mem in (200..=800).step_by(100) {
            let t = system
                .simulate_sample(&chars, FreqSetting::from_mhz(800, mem))
                .time
                .value();
            assert!(t <= prev * (1.0 + 1e-12), "case {case} mem {mem}");
            prev = t;
        }
    }
}

/// Loosening the budget never slows the optimal choice down.
#[test]
fn budget_monotonicity() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xB4D6_E700 ^ case);
        let data = characterize(&arb_trace(&mut rng), arb_grid(&mut rng));
        for s in 0..data.n_samples() {
            let mut prev = f64::INFINITY;
            for budget_v in [1.0, 1.2, 1.4, 1.8] {
                let budget = InefficiencyBudget::bounded(budget_v).unwrap();
                let t = OptimalFinder::new(budget).find(&data, s).time.value();
                assert!(t <= prev * (1.0 + 0.006), "case {case} sample {s}");
                prev = t;
            }
        }
    }
}

/// Phase scripts always render valid characteristics at any seed.
#[test]
fn rendered_scripts_are_valid() {
    for case in 0..256 {
        let mut rng = SplitMix64::new(0x5C21_B700 ^ case);
        let seed = rng.next_u64();
        let jitter = rng.range_f64(0.0, 0.1);
        let script = PhaseScript::new(vec![Phase::constant(
            SampleCharacteristics::new(1.0, 8.0),
            5,
        )]);
        for s in script.render(seed, jitter) {
            assert!(s.is_valid(), "case {case} seed {seed} jitter {jitter}");
        }
    }
}
