//! Property-based invariants over randomized workloads, grids and budgets.

use mcdvfs_core::{cluster_series, stable_regions, InefficiencyBudget, OptimalFinder};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::{FreqSetting, FrequencyGrid, SampleCharacteristics};
use mcdvfs_workloads::{Phase, PhaseScript, SampleTrace};
use proptest::prelude::*;

/// Random but valid sample characteristics.
fn arb_chars() -> impl Strategy<Value = SampleCharacteristics> {
    (
        0.4f64..2.5,   // base_cpi
        0.0f64..35.0,  // mpki
        0.0f64..1.0,   // write_frac
        0.05f64..0.95, // row_hit_rate
        1.0f64..4.0,   // mlp
        0.1f64..1.0,   // stall_exposure
        0.2f64..1.0,   // activity_factor
    )
        .prop_map(|(cpi, mpki, wf, rh, mlp, se, af)| SampleCharacteristics {
            base_cpi: cpi,
            mpki,
            write_frac: wf,
            row_hit_rate: rh,
            mlp,
            stall_exposure: se,
            activity_factor: af,
        })
}

/// Short random traces keep the grid characterization fast under proptest.
fn arb_trace() -> impl Strategy<Value = SampleTrace> {
    proptest::collection::vec(arb_chars(), 2..6)
        .prop_map(|samples| SampleTrace::new("prop", samples))
}

/// A small random sub-grid of the platform's range.
fn arb_grid() -> impl Strategy<Value = FrequencyGrid> {
    (1u32..=4, 1u32..=3).prop_map(|(csteps, msteps)| {
        FrequencyGrid::new(
            200,
            200 + 200 * csteps,
            200,
            200,
            200 + 200 * msteps,
            200,
        )
        .expect("valid sub-grid")
    })
}

fn characterize(trace: &SampleTrace, grid: FrequencyGrid) -> CharacterizationGrid {
    CharacterizationGrid::characterize(&System::galaxy_nexus_class(), trace, grid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Inefficiency is ≥ 1 for every sample at every setting.
    #[test]
    fn inefficiency_is_at_least_one(trace in arb_trace(), grid in arb_grid()) {
        let data = characterize(&trace, grid);
        for s in 0..data.n_samples() {
            let emin = data.sample_emin(s);
            for m in data.sample_row(s) {
                prop_assert!(m.energy() / emin >= 1.0 - 1e-12);
            }
        }
    }

    /// The optimal choice dominates every feasible setting (within the
    /// tie tolerance) and respects the budget (within noise tolerance).
    #[test]
    fn optimal_dominates_feasible(
        trace in arb_trace(),
        grid in arb_grid(),
        budget_v in 1.0f64..2.0,
    ) {
        let data = characterize(&trace, grid);
        let budget = InefficiencyBudget::bounded(budget_v).unwrap();
        let finder = OptimalFinder::new(budget);
        for s in 0..data.n_samples() {
            let choice = finder.find(&data, s);
            prop_assert!(
                choice.inefficiency.value()
                    <= budget_v * (1.0 + InefficiencyBudget::NOISE_TOLERANCE) + 1e-9
            );
            for i in finder.feasible(&data, s) {
                let t = data.measurement(s, i).time.value();
                prop_assert!(choice.time.value() <= t * (1.0 + 0.005) + 1e-15);
            }
        }
    }

    /// Clusters contain their optimal; members respect budget and
    /// threshold; larger thresholds produce supersets.
    #[test]
    fn cluster_invariants(
        trace in arb_trace(),
        grid in arb_grid(),
        budget_v in 1.0f64..1.8,
    ) {
        let data = characterize(&trace, grid);
        let budget = InefficiencyBudget::bounded(budget_v).unwrap();
        let tight = cluster_series(&data, budget, 0.01).unwrap();
        let loose = cluster_series(&data, budget, 0.05).unwrap();
        for (a, b) in tight.iter().zip(&loose) {
            prop_assert!(a.contains_index(a.optimal.index));
            prop_assert!(b.len() >= a.len());
            for &i in a.member_indices() {
                prop_assert!(b.contains_index(i));
                let loss = 1.0 - a.optimal.time.value()
                    / data.measurement(a.sample, i).time.value();
                prop_assert!(loss <= 0.01 + 1e-9);
            }
        }
    }

    /// Stable regions partition the trace, and every region's chosen
    /// setting is in every covered sample's cluster.
    #[test]
    fn stable_regions_partition_and_cover(
        trace in arb_trace(),
        grid in arb_grid(),
    ) {
        let data = characterize(&trace, grid);
        let budget = InefficiencyBudget::bounded(1.3).unwrap();
        let clusters = cluster_series(&data, budget, 0.03).unwrap();
        let regions = stable_regions(&clusters);
        prop_assert_eq!(regions[0].start, 0);
        prop_assert_eq!(regions.last().unwrap().end, data.n_samples());
        for w in regions.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        for r in &regions {
            for s in r.start..r.end {
                prop_assert!(clusters[s].contains_index(r.chosen_index));
            }
        }
    }

    /// Execution time is monotone non-increasing in each frequency domain
    /// separately.
    #[test]
    fn time_monotone_in_each_domain(chars in arb_chars()) {
        let system = System::galaxy_nexus_class().with_measurement_noise(0.0);
        let mut prev = f64::INFINITY;
        for cpu in (100..=1000).step_by(100) {
            let t = system
                .simulate_sample(&chars, FreqSetting::from_mhz(cpu, 400))
                .time
                .value();
            prop_assert!(t <= prev * (1.0 + 1e-12));
            prev = t;
        }
        let mut prev = f64::INFINITY;
        for mem in (200..=800).step_by(100) {
            let t = system
                .simulate_sample(&chars, FreqSetting::from_mhz(800, mem))
                .time
                .value();
            prop_assert!(t <= prev * (1.0 + 1e-12));
            prev = t;
        }
    }

    /// Loosening the budget never slows the optimal choice down.
    #[test]
    fn budget_monotonicity(trace in arb_trace(), grid in arb_grid()) {
        let data = characterize(&trace, grid);
        for s in 0..data.n_samples() {
            let mut prev = f64::INFINITY;
            for budget_v in [1.0, 1.2, 1.4, 1.8] {
                let budget = InefficiencyBudget::bounded(budget_v).unwrap();
                let t = OptimalFinder::new(budget).find(&data, s).time.value();
                prop_assert!(t <= prev * (1.0 + 0.006), "sample {}", s);
                prev = t;
            }
        }
    }

    /// Phase scripts always render valid characteristics at any seed.
    #[test]
    fn rendered_scripts_are_valid(seed in any::<u64>(), jitter in 0.0f64..0.1) {
        let script = PhaseScript::new(vec![
            Phase::constant(SampleCharacteristics::new(1.0, 8.0), 5),
        ]);
        for s in script.render(seed, jitter) {
            prop_assert!(s.is_valid());
        }
    }
}
