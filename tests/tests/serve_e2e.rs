//! End-to-end pinning of the serving layer against direct engine calls.
//!
//! The serving contract is that a reply read off the socket is
//! bit-identical to what the same `SweepEngine` query returns in-process
//! — regardless of worker count and regardless of whether the reply came
//! from a compute worker or the response cache. These tests hold that
//! contract at 1 and 4 workers, exercise the cached second hit of every
//! query, and check the overload path sheds instead of stalling.

use mcdvfs_core::{GovernedRun, InefficiencyBudget, PolicyScorecard, SweepEngine};
use mcdvfs_obs::{duration_edges_ns, Histogram};
use mcdvfs_policy::{build_policy, PolicyGovernor};
use mcdvfs_serve::{
    cross_check, Client, ClientPool, Request, Response, ServeState, Server, ServerConfig,
    TenantSpec,
};
use mcdvfs_sim::System;
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::{Benchmark, SampleTrace, Scenario};

const BUDGET: f64 = 1.3;
const THRESHOLD: f64 = 0.05;

fn trace() -> SampleTrace {
    Benchmark::Gobmk.trace().window(0, 10)
}

fn engine() -> SweepEngine {
    SweepEngine::characterize(
        &System::galaxy_nexus_class(),
        &trace(),
        FrequencyGrid::coarse(),
    )
}

fn config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        ..ServerConfig::default()
    }
}

/// Sends `request` twice and asserts both replies decode equal — the
/// first answer comes from a compute worker, the second from the cache.
fn ask_twice(client: &mut Client, request: &Request) -> Response {
    let first = client.request(request).expect("first reply");
    let second = client.request(request).expect("cached reply");
    assert_eq!(first, second, "cached reply diverged for {request:?}");
    first
}

#[test]
fn socket_replies_are_bit_identical_to_direct_engine_calls() {
    let budget = InefficiencyBudget::bounded(BUDGET).unwrap();
    let reference = engine();
    let expect_choices = reference.optimal_series(budget);
    let expect_clusters = reference.cluster_detail(budget, THRESHOLD).unwrap();
    let expect_regions = reference.stable_detail(budget, THRESHOLD).unwrap();
    let expect_report = reference
        .governed_reports(&GovernedRun::with_paper_overheads(), &trace(), &[budget])
        .pop()
        .unwrap();
    let data = reference.data();
    // Direct-engine-path policy replay, mirroring the shard's compute arm.
    let expect_policy = {
        let ideal = reference
            .governed_reports(&GovernedRun::without_overheads(), &trace(), &[budget])
            .pop()
            .unwrap();
        let scenario = Scenario::by_name("load_burst").unwrap();
        let mut governor =
            PolicyGovernor::new(build_policy("reactive").unwrap(), &scenario, data, budget);
        let deadlines = governor.deadlines();
        PolicyScorecard::score(
            &GovernedRun::with_paper_overheads(),
            data,
            &trace(),
            &mut governor,
            &deadlines,
            scenario.name(),
            &ideal,
        )
    };

    for workers in [1usize, 4] {
        let server = Server::start(
            "127.0.0.1:0",
            ServeState::new(engine(), trace()),
            config(workers),
        )
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();

        let reply = ask_twice(&mut client, &Request::OptimalSetting { budget });
        let Response::OptimalSetting(choices) = reply else {
            panic!("wrong reply kind at {workers} workers");
        };
        assert_eq!(choices.len(), expect_choices.len());
        for (wire, direct) in choices.iter().zip(&expect_choices) {
            assert_eq!(wire.sample, direct.sample);
            assert_eq!(wire.index, direct.index);
            assert_eq!(wire.cpu_mhz, direct.setting.cpu.mhz());
            assert_eq!(wire.mem_mhz, direct.setting.mem.mhz());
            assert_eq!(wire.time_s.to_bits(), direct.time.value().to_bits());
            assert_eq!(wire.energy_j.to_bits(), direct.energy.value().to_bits());
            assert_eq!(
                wire.inefficiency.to_bits(),
                direct.inefficiency.value().to_bits()
            );
        }

        let reply = ask_twice(
            &mut client,
            &Request::Cluster {
                budget,
                threshold: THRESHOLD,
            },
        );
        let Response::Cluster(clusters) = reply else {
            panic!("wrong reply kind at {workers} workers");
        };
        assert_eq!(clusters.len(), expect_clusters.len());
        for (wire, direct) in clusters.iter().zip(&expect_clusters) {
            assert_eq!(wire.sample, direct.sample);
            assert_eq!(wire.optimal_index, direct.optimal.index);
            assert_eq!(wire.members, direct.member_indices().to_vec());
            assert_eq!(wire.cpu_mhz, direct.cpu_range_mhz(data));
            assert_eq!(wire.mem_mhz, direct.mem_range_mhz(data));
        }

        let reply = ask_twice(
            &mut client,
            &Request::StableRegions {
                budget,
                threshold: THRESHOLD,
            },
        );
        let Response::StableRegions(regions) = reply else {
            panic!("wrong reply kind at {workers} workers");
        };
        assert_eq!(regions.len(), expect_regions.len());
        for (wire, direct) in regions.iter().zip(&expect_regions) {
            assert_eq!(wire.start, direct.start);
            assert_eq!(wire.end, direct.end);
            assert_eq!(wire.chosen_index, direct.chosen_index);
            assert_eq!(wire.available, direct.available_indices().to_vec());
            let chosen = direct.chosen_setting(data);
            assert_eq!(wire.cpu_mhz, chosen.cpu.mhz());
            assert_eq!(wire.mem_mhz, chosen.mem.mhz());
        }

        let reply = ask_twice(
            &mut client,
            &Request::GovernedReplay {
                governor: "paper".to_string(),
                budget,
            },
        );
        let Response::GovernedReplay(report) = reply else {
            panic!("wrong reply kind at {workers} workers");
        };
        assert_eq!(report.governor, expect_report.governor);
        assert_eq!(
            report.work_time_s.to_bits(),
            expect_report.work_time.value().to_bits()
        );
        assert_eq!(
            report.work_energy_j.to_bits(),
            expect_report.work_energy.value().to_bits()
        );
        assert_eq!(
            report.tuning_energy_j.to_bits(),
            expect_report.tuning_energy.value().to_bits()
        );
        assert_eq!(
            report.transition_energy_j.to_bits(),
            expect_report.transition_energy.value().to_bits()
        );
        assert_eq!(report.transitions, expect_report.transitions);
        assert_eq!(report.searches, expect_report.searches);
        assert_eq!(
            report.total_emin_j.to_bits(),
            expect_report.total_emin.value().to_bits()
        );

        let reply = ask_twice(
            &mut client,
            &Request::PolicyReplay {
                policy: "reactive".to_string(),
                budget,
                scenario: "load_burst".to_string(),
            },
        );
        let Response::PolicyReplay(p) = reply else {
            panic!("wrong reply kind at {workers} workers");
        };
        assert_eq!(p.policy, "reactive");
        assert_eq!(p.scenario, "load_burst");
        assert_eq!(p.decisions, trace().len() as u64);
        assert_eq!(p.deadline_misses, expect_policy.deadline_misses);
        assert_eq!(p.budget_exhaustions, 0);
        assert_eq!(
            p.energy_vs_emin.to_bits(),
            expect_policy.energy_vs_emin.to_bits()
        );
        assert_eq!(
            p.energy_vs_oracle.to_bits(),
            expect_policy.energy_vs_oracle.to_bits()
        );
        assert_eq!(
            p.time_vs_oracle.to_bits(),
            expect_policy.time_vs_oracle.to_bits()
        );
        assert_eq!(p.report.governor, expect_policy.report.governor);
        assert_eq!(
            p.report.work_energy_j.to_bits(),
            expect_policy.report.work_energy.value().to_bits()
        );
        assert_eq!(p.report.transitions, expect_policy.transitions);
        assert_eq!(p.report.searches, expect_policy.searches);

        let metrics = server.shutdown();
        // 10 compute requests: 5 distinct queries, each answered once by
        // a worker and once from the cache.
        assert_eq!(metrics.counter("requests.total"), 10);
        assert_eq!(metrics.counter("cache.miss"), 5);
        assert_eq!(metrics.counter("cache.hit"), 5);
        assert_eq!(metrics.counter("overloaded"), 0);
        assert_eq!(metrics.counter("protocol.errors"), 0);
    }
}

#[test]
fn policy_counters_surface_in_stats_and_telemetry() {
    let budget = InefficiencyBudget::bounded(BUDGET).unwrap();
    let server =
        Server::start("127.0.0.1:0", ServeState::new(engine(), trace()), config(2)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let request = Request::PolicyReplay {
        policy: "reactive".to_string(),
        budget,
        scenario: "load_burst".to_string(),
    };
    // Second (cached) hit replays nothing, so counters reflect exactly
    // one compute.
    let Response::PolicyReplay(p) = ask_twice(&mut client, &request) else {
        panic!("wrong reply kind");
    };
    let Response::Stats(stats) = client.request(&Request::Stats).unwrap() else {
        panic!("wrong reply kind");
    };
    assert_eq!(stats.policy.decisions, p.decisions);
    assert_eq!(stats.policy.transitions, p.report.transitions);
    assert_eq!(stats.policy.deadline_misses, p.deadline_misses);
    assert_eq!(stats.policy.budget_exhaustions, p.budget_exhaustions);
    assert!(stats.policy.decisions > 0, "a replay made decisions");

    let Response::Telemetry(telemetry) = client.request(&Request::Telemetry).unwrap() else {
        panic!("wrong reply kind");
    };
    assert_eq!(telemetry.policy, stats.policy);

    // Unknown policy / scenario names are typed errors (never cached,
    // never counted).
    let Response::Error(e) = client
        .request(&Request::PolicyReplay {
            policy: "nope".to_string(),
            budget,
            scenario: "load_burst".to_string(),
        })
        .unwrap()
    else {
        panic!("unknown policy must be a typed error");
    };
    assert!(e.contains("unknown policy"), "{e}");
    let Response::Error(e) = client
        .request(&Request::PolicyReplay {
            policy: "reactive".to_string(),
            budget,
            scenario: "nope".to_string(),
        })
        .unwrap()
    else {
        panic!("unknown scenario must be a typed error");
    };
    assert!(e.contains("unknown scenario"), "{e}");
    let Response::Stats(after) = client.request(&Request::Stats).unwrap() else {
        panic!("wrong reply kind");
    };
    assert_eq!(after.policy, stats.policy, "errors must not count");

    let _ = server.shutdown();
}

#[test]
fn health_reports_the_served_characterization() {
    let reference = engine();
    let fingerprint = format!("{:016x}", reference.data().fingerprint());
    let server =
        Server::start("127.0.0.1:0", ServeState::new(engine(), trace()), config(2)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let Response::Health(health) = client.request(&Request::Health).unwrap() else {
        panic!("wrong reply kind");
    };
    assert_eq!(health.status, "ok");
    assert_eq!(health.workload, reference.data().name());
    assert_eq!(health.samples, reference.data().n_samples());
    assert_eq!(health.settings, reference.data().n_settings());
    assert_eq!(health.fingerprint, fingerprint);
    assert_eq!(health.workers, 2);
    let _ = server.shutdown();
}

#[test]
fn recharacterized_state_serves_updated_data_under_a_fresh_fingerprint() {
    let system = System::galaxy_nexus_class();
    let base = trace();
    let mut samples = base.samples().to_vec();
    samples[2].mpki *= 1.5;
    samples[7].base_cpi += 0.25;
    let updated = SampleTrace::new(base.name(), samples);

    // Delta-update a warm state: only rows 2 and 7 are re-simulated, and
    // the fingerprint refresh folds cached row hashes.
    let mut state = ServeState::new(engine(), base);
    let stale = state.fingerprint();
    state.recharacterize(&system, updated.clone(), &[2, 7]);
    assert_ne!(state.fingerprint(), stale, "served identity must change");

    // The delta-updated state is indistinguishable from a from-scratch
    // characterization of the updated trace — fingerprint and replies.
    let fresh = SweepEngine::characterize(&system, &updated, FrequencyGrid::coarse());
    assert_eq!(state.fingerprint(), fresh.data().fingerprint());
    let budget = InefficiencyBudget::bounded(BUDGET).unwrap();
    let expect = fresh.optimal_series(budget);

    let server = Server::start("127.0.0.1:0", state, config(2)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let Response::Health(health) = client.request(&Request::Health).unwrap() else {
        panic!("wrong reply kind");
    };
    assert_eq!(
        health.fingerprint,
        format!("{:016x}", fresh.data().fingerprint())
    );
    let reply = ask_twice(&mut client, &Request::OptimalSetting { budget });
    let Response::OptimalSetting(choices) = reply else {
        panic!("wrong reply kind");
    };
    assert_eq!(choices.len(), expect.len());
    for (wire, direct) in choices.iter().zip(&expect) {
        assert_eq!(wire.index, direct.index);
        assert_eq!(wire.time_s.to_bits(), direct.time.value().to_bits());
        assert_eq!(wire.energy_j.to_bits(), direct.energy.value().to_bits());
    }
    let _ = server.shutdown();
}

#[test]
fn inline_kinds_never_reach_the_compute_path() {
    // Stats and Health answer in the reader thread: no cache traffic, no
    // queueing, and in particular no trip through the keyless-dispatch
    // fallback (the `internal.errors` counter stays untouched — it only
    // moves when a compute request reaches dispatch without a cache key,
    // which used to panic the serving thread instead of replying).
    let server =
        Server::start("127.0.0.1:0", ServeState::new(engine(), trace()), config(1)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for _ in 0..3 {
        assert!(matches!(
            client.request(&Request::Health).unwrap(),
            Response::Health(_)
        ));
        assert!(matches!(
            client.request(&Request::Stats).unwrap(),
            Response::Stats(_)
        ));
    }
    let budget = InefficiencyBudget::bounded(BUDGET).unwrap();
    assert!(matches!(
        client.request(&Request::OptimalSetting { budget }).unwrap(),
        Response::OptimalSetting(_)
    ));
    let metrics = server.shutdown();
    assert_eq!(metrics.counter("requests.total"), 7);
    assert_eq!(metrics.counter("internal.errors"), 0);
    assert_eq!(metrics.counter("cache.miss"), 1, "only the compute query");
    assert_eq!(metrics.counter("cache.hit"), 0);
}

#[test]
fn malformed_requests_answer_typed_errors_and_count() {
    let server =
        Server::start("127.0.0.1:0", ServeState::new(engine(), trace()), config(1)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    // An unknown governor is decodable but uncomputable: typed error.
    let reply = client
        .request(&Request::GovernedReplay {
            governor: "ondemand".to_string(),
            budget: InefficiencyBudget::Unconstrained,
        })
        .unwrap();
    assert!(matches!(reply, Response::Error(_)), "got {reply:?}");
    // The server stays healthy afterwards.
    let reply = client.request(&Request::Health).unwrap();
    assert!(matches!(reply, Response::Health(_)));
    let metrics = server.shutdown();
    assert_eq!(metrics.counter("requests.total"), 2);
    // Errors are never cached.
    assert_eq!(metrics.counter("cache.hit"), 0);
}

#[test]
fn hostile_deep_nesting_frame_gets_an_error_not_a_crash() {
    // Regression: a single frame of ~100k open brackets used to overflow
    // the reader thread's stack via unbounded parser recursion and abort
    // the whole process. It must come back as a typed error with the
    // server still serving.
    use mcdvfs_serve::{read_frame, write_frame};
    let server =
        Server::start("127.0.0.1:0", ServeState::new(engine(), trace()), config(1)).unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let hostile = "[".repeat(100_000);
    write_frame(&mut stream, &hostile).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let reply = read_frame(&mut reader).unwrap().expect("a reply frame");
    assert!(
        reply.contains("error") && reply.contains("nesting"),
        "expected a nesting error, got: {reply}"
    );
    drop(reader);
    drop(stream);
    // The process survived and new connections still work.
    let mut client = Client::connect(server.addr()).unwrap();
    let reply = client.request(&Request::Health).unwrap();
    assert!(matches!(reply, Response::Health(_)));
    let metrics = server.shutdown();
    assert!(metrics.counter("protocol.errors") >= 1);
}

#[test]
fn full_queue_sheds_with_overloaded_instead_of_stalling() {
    // One slow worker and a two-slot queue: concurrent clients with
    // distinct budgets (the cache cannot absorb them) must overflow it.
    let server = Server::start(
        "127.0.0.1:0",
        ServeState::new(engine(), trace()),
        ServerConfig {
            workers: 1,
            queue_bound: 2,
            compute_delay: std::time::Duration::from_millis(25),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let counts: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6u64)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut answered = 0u64;
                    let mut shed = 0u64;
                    for i in 0..10u64 {
                        let budget = 1.0 + (c * 1000 + i + 1) as f64 * 1e-6;
                        let reply = client
                            .request(&Request::OptimalSetting {
                                budget: InefficiencyBudget::bounded(budget).unwrap(),
                            })
                            .unwrap();
                        match reply {
                            Response::OptimalSetting(_) => answered += 1,
                            Response::Overloaded => shed += 1,
                            other => panic!("unexpected reply {other:?}"),
                        }
                    }
                    (answered, shed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let answered: u64 = counts.iter().map(|(a, _)| a).sum();
    let shed: u64 = counts.iter().map(|(_, s)| s).sum();
    assert_eq!(answered + shed, 60, "every request got exactly one reply");
    assert!(shed > 0, "load never overflowed the two-slot queue");
    let metrics = server.shutdown();
    assert_eq!(metrics.counter("overloaded"), shed);
}

#[test]
fn stats_expose_per_shard_rows_with_cache_and_queue_detail() {
    let bzip2 = Benchmark::Bzip2.trace().window(0, 10);
    let spec = TenantSpec::new(
        System::galaxy_nexus_class(),
        bzip2.clone(),
        FrequencyGrid::coarse(),
    );
    let server = Server::start(
        "127.0.0.1:0",
        ServeState::new(engine(), trace()).with_tenant("bzip2", spec),
        config(2),
    )
    .unwrap();
    // The pool spreads requests across connections; per-shard totals are
    // connection-independent.
    let mut pool = ClientPool::connect(server.addr(), 4).unwrap();
    assert_eq!(pool.len(), 4);
    let budget = InefficiencyBudget::bounded(BUDGET).unwrap();
    for workload in [None, None, Some("bzip2"), Some("bzip2")] {
        let reply = pool
            .request_for(workload, &Request::OptimalSetting { budget })
            .unwrap();
        assert!(
            matches!(reply, Response::OptimalSetting(_)),
            "got {reply:?}"
        );
    }
    let Response::Stats(stats) = pool.request(&Request::Stats).unwrap() else {
        panic!("wrong reply kind");
    };
    assert_eq!(stats.engines, 2, "default shard plus one lazy tenant");
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.shards.len(), 2);
    let default_name = engine().data().name().to_string();
    let by_name = |name: &str| {
        stats
            .shards
            .iter()
            .find(|s| s.workload == name)
            .unwrap_or_else(|| panic!("no shard row for {name}"))
    };
    let default_row = by_name(&default_name);
    let tenant_row = by_name("bzip2");
    for (row, pinned) in [(default_row, true), (tenant_row, false)] {
        assert_eq!(row.requests, 2, "{}: two routed queries", row.workload);
        assert_eq!(
            row.cache_misses, 1,
            "{}: first query computes",
            row.workload
        );
        assert_eq!(row.cache_hits, 1, "{}: second query hits", row.workload);
        assert_eq!(row.queue_depth, 0, "{}: drained at rest", row.workload);
        assert_eq!(row.pinned, pinned, "{}: pinning", row.workload);
    }
    assert_ne!(
        default_row.fingerprint, tenant_row.fingerprint,
        "distinct characterizations must shard separately"
    );
    let _ = server.shutdown();
}

#[test]
fn slow_loris_connections_are_reaped_by_the_reactor_tick() {
    use std::io::Read;
    let server = Server::start(
        "127.0.0.1:0",
        ServeState::new(engine(), trace()),
        ServerConfig {
            workers: 1,
            idle_timeout: std::time::Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // One connection never sends a byte; the other trickles a partial
    // frame header and stalls. Neither costs a server thread, and both
    // must be reaped by the idle deadline — enforced from the reactor
    // tick, not from inside a blocking read.
    let mut silent = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut stalled = std::net::TcpStream::connect(server.addr()).unwrap();
    std::io::Write::write_all(&mut stalled, b"12").unwrap();
    for stream in [&silent, &stalled] {
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
    }
    std::thread::sleep(std::time::Duration::from_millis(600));
    // The server closed both: reads see EOF, not a reply frame.
    let mut scratch = [0u8; 16];
    assert_eq!(silent.read(&mut scratch).unwrap(), 0, "silent conn EOF");
    assert_eq!(stalled.read(&mut scratch).unwrap(), 0, "stalled conn EOF");
    // And it still serves new clients afterwards.
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(matches!(
        client.request(&Request::Health).unwrap(),
        Response::Health(_)
    ));
    drop(client);
    let metrics = server.shutdown();
    assert_eq!(metrics.counter("connections.idle_closed"), 2);
    assert_eq!(metrics.counter("protocol.errors"), 0);
}

#[test]
fn telemetry_gating_leaves_compute_replies_bit_identical() {
    // The flight recorder's zero-overhead contract: with telemetry off,
    // no trace is allocated and no window is observed, and either way
    // every f64 that crosses the wire is bit-for-bit the same.
    let budget = InefficiencyBudget::bounded(BUDGET).unwrap();
    let query = Request::OptimalSetting { budget };
    let replay = Request::GovernedReplay {
        governor: "paper".to_string(),
        budget,
    };
    let mut replies = Vec::new();
    for telemetry in [true, false] {
        let server = Server::start(
            "127.0.0.1:0",
            ServeState::new(engine(), trace()),
            ServerConfig {
                workers: 2,
                telemetry,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let Response::OptimalSetting(choices) = client.request(&query).unwrap() else {
            panic!("wrong reply kind (telemetry={telemetry})");
        };
        let Response::GovernedReplay(report) = client.request(&replay).unwrap() else {
            panic!("wrong reply kind (telemetry={telemetry})");
        };
        let Response::Telemetry(tel) = client.request(&Request::Telemetry).unwrap() else {
            panic!("wrong reply kind (telemetry={telemetry})");
        };
        assert_eq!(tel.enabled, telemetry);
        let metrics = server.shutdown();
        if telemetry {
            assert!(tel.flight_recorded > 0, "recorder saw the requests");
            assert!(metrics.counter("reactor.ticks") > 0, "tick metrics on");
        } else {
            assert_eq!(tel.flight_recorded, 0, "disabled recorder stays empty");
            assert_eq!(tel.slow_threshold_ns, 0);
            assert_eq!(metrics.counter("reactor.ticks"), 0, "tick metrics off");
        }
        replies.push((choices, report));
    }
    let (on_choices, on_report) = &replies[0];
    let (off_choices, off_report) = &replies[1];
    assert_eq!(on_choices.len(), off_choices.len());
    for (on, off) in on_choices.iter().zip(off_choices) {
        assert_eq!(on.sample, off.sample);
        assert_eq!(on.index, off.index);
        assert_eq!(on.time_s.to_bits(), off.time_s.to_bits());
        assert_eq!(on.energy_j.to_bits(), off.energy_j.to_bits());
        assert_eq!(on.inefficiency.to_bits(), off.inefficiency.to_bits());
    }
    assert_eq!(
        on_report.work_time_s.to_bits(),
        off_report.work_time_s.to_bits()
    );
    assert_eq!(
        on_report.work_energy_j.to_bits(),
        off_report.work_energy_j.to_bits()
    );
    assert_eq!(
        on_report.total_emin_j.to_bits(),
        off_report.total_emin_j.to_bits()
    );
    assert_eq!(on_report.transitions, off_report.transitions);
}

#[test]
fn trace_dump_returns_monotone_stage_timelines_over_the_socket() {
    let budget = InefficiencyBudget::bounded(BUDGET).unwrap();
    let server =
        Server::start("127.0.0.1:0", ServeState::new(engine(), trace()), config(2)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(matches!(
        client.request(&Request::OptimalSetting { budget }).unwrap(),
        Response::OptimalSetting(_)
    ));
    let Response::TraceDump(traces) = client
        .request(&Request::TraceDump {
            limit: 16,
            slow_only: false,
        })
        .unwrap()
    else {
        panic!("wrong reply kind");
    };
    // The compute request took the full pipeline: all eight stages, in
    // order, with non-decreasing timestamps.
    let compute = traces
        .iter()
        .find(|t| t.kind == "optimal_setting")
        .expect("a compute flight record");
    assert_eq!(compute.outcome, "ok");
    assert!(compute.total_ns > 0);
    assert_eq!(
        compute
            .stages
            .iter()
            .map(|s| s.stage.as_str())
            .collect::<Vec<_>>(),
        vec![
            "accepted",
            "frame_complete",
            "decoded",
            "enqueued",
            "dequeued",
            "computed",
            "encoded",
            "write_flushed",
        ]
    );
    for pair in compute.stages.windows(2) {
        assert!(
            pair[0].t_ns <= pair[1].t_ns,
            "stage {} at {} ns regressed to {} at {} ns",
            pair[0].stage,
            pair[0].t_ns,
            pair[1].stage,
            pair[1].t_ns
        );
    }
    let _ = server.shutdown();
}

#[test]
fn steady_phase_cross_check_has_zero_count_drift() {
    // The same validation pass loadgen runs: the server's decoded total
    // equals the client's issued total exactly, and the server-side p95
    // (no network, no client stack) sits at or under the client-side
    // p95.
    let server =
        Server::start("127.0.0.1:0", ServeState::new(engine(), trace()), config(2)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let mut hist = Histogram::new(duration_edges_ns());
    let mut issued = 0u64;
    for i in 0..20u64 {
        let budget = InefficiencyBudget::bounded(1.0 + (i + 1) as f64 * 1e-3).unwrap();
        let t0 = std::time::Instant::now();
        assert!(matches!(
            client.request(&Request::OptimalSetting { budget }).unwrap(),
            Response::OptimalSetting(_)
        ));
        hist.add(t0.elapsed().as_nanos() as f64);
        issued += 1;
    }
    let Response::Telemetry(tel) = client.request(&Request::Telemetry).unwrap() else {
        panic!("wrong reply kind");
    };
    issued += 1;
    std::thread::sleep(std::time::Duration::from_millis(10));
    // Stats last: its own decode is the final increment of the counter
    // the cross-check reads.
    let Response::Stats(stats) = client.request(&Request::Stats).unwrap() else {
        panic!("wrong reply kind");
    };
    issued += 1;
    let client_p95 = hist.percentile(0.95).expect("client samples");
    let check = cross_check(&stats, &tel, issued, client_p95).expect("cross-check holds");
    assert_eq!(check.server_total, issued, "zero count drift");
    assert!(check.server_p95_ns <= check.client_p95_ns);
    assert_eq!(stats.requests_in_flight, 0, "drained at rest");
    assert!(
        stats.uptime_ms > tel.uptime_ms,
        "uptime advances between queries ({} -> {})",
        tel.uptime_ms,
        stats.uptime_ms
    );
    let _ = server.shutdown();
}

#[test]
fn mixed_tenant_replies_stay_bit_identical_across_eviction_and_rebuild() {
    let system = System::galaxy_nexus_class();
    let bzip2_trace = Benchmark::Bzip2.trace().window(0, 10);
    let gcc_trace = Benchmark::Gcc.trace().window(0, 10);
    let budget = InefficiencyBudget::bounded(BUDGET).unwrap();

    // Direct per-grid references the served replies must match bit for
    // bit, at any worker count and across shard eviction/rebuild.
    let direct_bzip2 = SweepEngine::characterize(&system, &bzip2_trace, FrequencyGrid::coarse());
    let direct_gcc = SweepEngine::characterize(&system, &gcc_trace, FrequencyGrid::coarse());
    assert_ne!(
        direct_bzip2.data().fingerprint(),
        direct_gcc.data().fingerprint()
    );

    // max_shards = 2 with the pinned default resident means bzip2 and
    // gcc can never be resident together: each resolve of the other
    // evicts the one loaded before it.
    let state = ServeState::new(engine(), trace())
        .with_tenant(
            "bzip2",
            TenantSpec::new(system.clone(), bzip2_trace, FrequencyGrid::coarse()),
        )
        .with_tenant(
            "gcc",
            TenantSpec::new(system.clone(), gcc_trace, FrequencyGrid::coarse()),
        );
    let server = Server::start(
        "127.0.0.1:0",
        state,
        ServerConfig {
            workers: 2,
            max_shards: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let pin = |reply: Response, reference: &SweepEngine, label: &str| {
        let Response::OptimalSetting(choices) = reply else {
            panic!("{label}: wrong reply kind");
        };
        let expect = reference.optimal_series(budget);
        assert_eq!(choices.len(), expect.len(), "{label}: length");
        for (wire, direct) in choices.iter().zip(&expect) {
            assert_eq!(wire.sample, direct.sample, "{label}");
            assert_eq!(wire.index, direct.index, "{label}");
            assert_eq!(
                wire.time_s.to_bits(),
                direct.time.value().to_bits(),
                "{label}: time bits"
            );
            assert_eq!(
                wire.energy_j.to_bits(),
                direct.energy.value().to_bits(),
                "{label}: energy bits"
            );
            assert_eq!(
                wire.inefficiency.to_bits(),
                direct.inefficiency.value().to_bits(),
                "{label}: inefficiency bits"
            );
        }
    };

    let query = Request::OptimalSetting { budget };
    let reply = client.request_for(Some("bzip2"), &query).unwrap();
    pin(reply, &direct_bzip2, "bzip2 first build");
    // Resolving gcc exceeds max_shards and evicts bzip2 (gobmk is
    // pinned).
    let reply = client.request_for(Some("gcc"), &query).unwrap();
    pin(reply, &direct_gcc, "gcc build evicting bzip2");
    // bzip2 again: rebuilt from its spec (evicting gcc) with the same
    // fingerprint and the same bits.
    let reply = client.request_for(Some("bzip2"), &query).unwrap();
    pin(reply, &direct_bzip2, "bzip2 rebuilt after eviction");

    let Response::Stats(stats) = client.request(&Request::Stats).unwrap() else {
        panic!("wrong reply kind");
    };
    assert_eq!(stats.engines, 2, "pinned default + one tenant resident");
    assert_eq!(stats.evictions, 2, "bzip2 evicted by gcc, gcc by bzip2");
    let resident: Vec<&str> = stats.shards.iter().map(|s| s.workload.as_str()).collect();
    assert!(resident.contains(&"bzip2"), "resident: {resident:?}");
    assert!(!resident.contains(&"gcc"), "resident: {resident:?}");

    // The default tenant was never disturbed.
    let reply = client.request(&Request::Health).unwrap();
    let Response::Health(health) = reply else {
        panic!("wrong reply kind");
    };
    assert_eq!(health.workload, engine().data().name());
    let _ = server.shutdown();
}
