//! Integration: driving the simulated platform through the Linux-style
//! kernel interfaces, end to end with the characterization data.

use mcdvfs_kernel::KernelShim;
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::{FreqSetting, FrequencyGrid};
use mcdvfs_workloads::Benchmark;

/// A userspace tuner (like the paper's characterization scripts) steps the
/// platform through settings via sysfs writes; the controller must follow
/// exactly, and the data collected at each step must match a direct grid
/// lookup.
#[test]
fn userspace_sweep_through_sysfs_matches_direct_characterization() {
    let grid = FrequencyGrid::coarse();
    let trace = Benchmark::Gobmk.trace().window(0, 1);
    let data = CharacterizationGrid::characterize(&System::galaxy_nexus_class(), &trace, grid);

    let mut shim = KernelShim::new(grid);
    shim.write("cpufreq/scaling_governor", "userspace").unwrap();
    shim.write("devfreq/governor", "userspace").unwrap();

    for setting in grid.settings() {
        shim.write(
            "cpufreq/scaling_setspeed",
            &format!("{}", u64::from(setting.cpu.mhz()) * 1000),
        )
        .unwrap();
        shim.write(
            "devfreq/userspace/set_freq",
            &format!("{}", u64::from(setting.mem.mhz()) * 1_000_000),
        )
        .unwrap();
        assert_eq!(shim.controller().current(), setting);
        // The sample measured at this setting is the grid's entry.
        let m = data.measurement_at(0, setting).unwrap();
        assert!(m.is_valid());
    }
    // A full sweep from the 1000 MHz boot setting: one drop to 100 MHz,
    // then nine tier climbs.
    assert_eq!(shim.controller().cpu_transition_count(), 10);
    assert!(shim.controller().mem_transition_count() >= 60);
}

/// The paper's "userspace frequency governors before starting the
/// benchmark" flow: pin both domains, then verify the pinned setting's
/// whole-run numbers.
#[test]
fn pinned_run_reproduces_fixed_setting_totals() {
    let grid = FrequencyGrid::coarse();
    let trace = Benchmark::Bzip2.trace().window(0, 8);
    let data = CharacterizationGrid::characterize(&System::galaxy_nexus_class(), &trace, grid);

    let mut shim = KernelShim::new(grid);
    shim.write("cpufreq/scaling_governor", "userspace").unwrap();
    shim.write("cpufreq/scaling_setspeed", "600000").unwrap();
    shim.write("devfreq/governor", "userspace").unwrap();
    shim.write("devfreq/userspace/set_freq", "400000000")
        .unwrap();

    let pinned = shim.controller().current();
    assert_eq!(pinned, FreqSetting::from_mhz(600, 400));
    let idx = grid.index_of(pinned).unwrap();
    assert!(data.total_time_at(idx).value() > 0.0);
    assert!(data.total_energy_at(idx) >= data.total_emin());
}

/// Policy limits compose with governors the way Linux composes them: a
/// thermal cap through scaling_max_freq constrains even `performance`.
#[test]
fn thermal_cap_scenario() {
    let mut shim = KernelShim::new(FrequencyGrid::coarse());
    assert_eq!(shim.controller().current().cpu.mhz(), 1000);
    shim.write("cpufreq/scaling_max_freq", "700000").unwrap();
    assert_eq!(shim.controller().current().cpu.mhz(), 700);
    // Userspace requests above the cap snap down to it.
    shim.write("cpufreq/scaling_governor", "userspace").unwrap();
    shim.write("cpufreq/scaling_setspeed", "1000000").unwrap();
    assert_eq!(shim.controller().current().cpu.mhz(), 700);
    // Cap released: the pinned userspace target stays, no surprise jumps.
    shim.write("cpufreq/scaling_max_freq", "1000000").unwrap();
    assert_eq!(shim.controller().current().cpu.mhz(), 700);
}

/// Transition accounting flows through the stack: every effective sysfs
/// frequency change bills the hardware model.
#[test]
fn sysfs_changes_bill_transition_costs() {
    let mut shim = KernelShim::new(FrequencyGrid::coarse());
    shim.write("cpufreq/scaling_governor", "powersave").unwrap();
    shim.write("cpufreq/scaling_governor", "performance")
        .unwrap();
    let transitions = shim.controller().transition_count();
    assert_eq!(transitions, 2);
    let latency = shim.controller().total_transition_latency();
    assert!(
        (latency.as_micros() - 60.0).abs() < 1.0,
        "two CPU transitions at 30 µs each, got {} µs",
        latency.as_micros()
    );
}
