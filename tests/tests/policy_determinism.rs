//! Bit-exact determinism of every shipped online policy.
//!
//! Policies are pure functions of (catalog, context, feedback), and
//! characterization is bit-identical at any thread count, so a policy
//! replay must produce the same setting sequence and the same energy and
//! time bits (`f64::to_bits`) on every run — across repeated runs of the
//! same process and across characterization thread counts. These loops
//! pin that for every shipped policy on every shipped scenario.

use mcdvfs_core::{GovernedRun, InefficiencyBudget};
use mcdvfs_policy::{build_policy, PolicyGovernor, SHIPPED_POLICIES};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Scenario;

const BUDGET: f64 = 1.3;

/// The full observable outcome of one policy replay, with every float
/// reduced to its bit pattern.
#[derive(Debug, PartialEq, Eq)]
struct ReplayPin {
    settings: Vec<usize>,
    energy_bits: u64,
    time_bits: u64,
    transitions: u64,
    searches: u64,
}

fn replay(policy: &str, scenario: &Scenario, data: &CharacterizationGrid) -> ReplayPin {
    let budget = InefficiencyBudget::bounded(BUDGET).unwrap();
    let mut governor = PolicyGovernor::new(build_policy(policy).unwrap(), scenario, data, budget);
    let report = GovernedRun::with_paper_overheads().execute(data, scenario.trace(), &mut governor);
    ReplayPin {
        settings: report
            .sample_settings
            .iter()
            .map(|s| data.grid().index_of(*s).unwrap())
            .collect(),
        energy_bits: report.total_energy().value().to_bits(),
        time_bits: report.total_time().value().to_bits(),
        transitions: report.transitions,
        searches: report.searches,
    }
}

#[test]
fn policies_are_bit_identical_across_runs_and_thread_counts() {
    let system = System::galaxy_nexus_class();
    for scenario in Scenario::all() {
        let sequential =
            CharacterizationGrid::characterize(&system, scenario.trace(), FrequencyGrid::coarse());
        let threaded = CharacterizationGrid::characterize_parallel(
            &system,
            scenario.trace(),
            FrequencyGrid::coarse(),
            4,
        );
        assert_eq!(
            sequential.fingerprint(),
            threaded.fingerprint(),
            "characterization must not depend on thread count"
        );
        for policy in SHIPPED_POLICIES {
            let baseline = replay(policy, &scenario, &sequential);
            for run in 0..3 {
                let repeat = replay(policy, &scenario, &sequential);
                assert_eq!(
                    baseline,
                    repeat,
                    "{policy}@{} diverged on repeat run {run}",
                    scenario.name()
                );
            }
            let cross = replay(policy, &scenario, &threaded);
            assert_eq!(
                baseline,
                cross,
                "{policy}@{} diverged across characterization thread counts",
                scenario.name()
            );
        }
    }
}
