//! Property tests for the snapshot store's content addressing.
//!
//! The store's correctness rests on two invariants, pinned here over
//! seeded random grids (the workspace builds offline, so [`SplitMix64`]
//! case loops stand in for `proptest`):
//!
//! 1. **Fingerprint stability** — the content address is a pure function
//!    of the measurement arena: sequential and parallel
//!    characterization at any thread count, `from_measurements`
//!    round-trips, full `recharacterize` passes, and
//!    snapshot-encode/decode all yield the same key. A fleet node may
//!    bake on one machine and warm-start on another; a drifting key
//!    would silently turn every warm start into a miss (or worse, a
//!    wrong hit).
//! 2. **Corruption rejection** — any byte flip or truncation of an
//!    encoded snapshot is rejected with a typed [`SnapshotError`],
//!    never a panic and never silently-wrong data.

use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_store::{Snapshot, SnapshotError};
use mcdvfs_types::{FrequencyGrid, SampleCharacteristics, SplitMix64};
use mcdvfs_workloads::SampleTrace;

const CASES: u64 = 24;

fn arb_chars(rng: &mut SplitMix64) -> SampleCharacteristics {
    SampleCharacteristics {
        base_cpi: rng.range_f64(0.4, 2.5),
        mpki: rng.range_f64(0.0, 35.0),
        write_frac: rng.range_f64(0.0, 1.0),
        row_hit_rate: rng.range_f64(0.05, 0.95),
        mlp: rng.range_f64(1.0, 4.0),
        stall_exposure: rng.range_f64(0.1, 1.0),
        activity_factor: rng.range_f64(0.2, 1.0),
    }
}

fn arb_trace(rng: &mut SplitMix64) -> SampleTrace {
    let n = rng.range_usize(2, 7);
    let samples = (0..n).map(|_| arb_chars(rng)).collect();
    SampleTrace::new("store-prop", samples)
}

fn arb_grid(rng: &mut SplitMix64) -> FrequencyGrid {
    let csteps = rng.range_usize(1, 5) as u32;
    let msteps = rng.range_usize(1, 4) as u32;
    FrequencyGrid::new(200, 200 + 200 * csteps, 200, 200, 200 + 200 * msteps, 200)
        .expect("valid sub-grid")
}

/// The content address is invariant across every construction path:
/// sequential, parallel at several widths, an explicit
/// `from_measurements` rebuild, and a full recharacterize of the same
/// trace.
#[test]
fn fingerprint_is_stable_across_construction_paths() {
    let system = System::galaxy_nexus_class();
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5707_E000 ^ case);
        let trace = arb_trace(&mut rng);
        let grid = arb_grid(&mut rng);

        let sequential = CharacterizationGrid::characterize(&system, &trace, grid);
        let key = sequential.fingerprint();

        for threads in [1usize, 2, 4] {
            let parallel =
                CharacterizationGrid::characterize_parallel(&system, &trace, grid, threads);
            assert_eq!(
                parallel.fingerprint(),
                key,
                "case {case}: {threads}-thread characterization drifted"
            );
        }

        let rebuilt = CharacterizationGrid::from_measurements(
            sequential.name(),
            grid,
            sequential.n_settings(),
            (0..sequential.n_samples())
                .flat_map(|s| sequential.sample_row(s).iter().copied())
                .collect(),
        );
        assert_eq!(
            rebuilt.fingerprint(),
            key,
            "case {case}: from_measurements drifted"
        );

        let mut recharacterized = rebuilt;
        let all: Vec<usize> = (0..recharacterized.n_samples()).collect();
        recharacterized.recharacterize(&system, &trace, &all);
        assert_eq!(
            recharacterized.fingerprint(),
            key,
            "case {case}: recharacterize of unchanged samples drifted"
        );

        let snapshot = sequential.to_snapshot();
        assert_eq!(snapshot.fingerprint, key, "case {case}: to_snapshot");
        let decoded = Snapshot::decode(&snapshot.encode()).expect("clean decode");
        let restored = CharacterizationGrid::from_snapshot(decoded).expect("clean restore");
        assert_eq!(
            restored.fingerprint(),
            key,
            "case {case}: snapshot round-trip drifted"
        );
    }
}

/// Random single-byte flips anywhere in the encoding are rejected with
/// a typed error — no panic, no silently corrupted grid.
#[test]
fn random_byte_flips_are_rejected_with_typed_errors() {
    let system = System::galaxy_nexus_class();
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xF11B_0000 ^ case);
        let trace = arb_trace(&mut rng);
        let grid = arb_grid(&mut rng);
        let bytes = CharacterizationGrid::characterize(&system, &trace, grid)
            .to_snapshot()
            .encode();

        for _ in 0..32 {
            let pos = rng.range_usize(0, bytes.len());
            let bit = 1u8 << rng.range_usize(0, 8);
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= bit;
            let err = Snapshot::decode(&corrupted)
                .expect_err(&format!("case {case}: flip at byte {pos} accepted"));
            assert!(
                matches!(
                    err,
                    SnapshotError::BadMagic { .. }
                        | SnapshotError::UnsupportedVersion { .. }
                        | SnapshotError::Truncated { .. }
                        | SnapshotError::ChecksumMismatch { .. }
                        | SnapshotError::FingerprintMismatch { .. }
                        | SnapshotError::Malformed { .. }
                ),
                "case {case}: flip at byte {pos} produced unexpected {err:?}"
            );
        }
    }
}

/// Every truncation — random cuts plus the full exhaustive sweep for a
/// small snapshot — is rejected with a typed error, never a panic.
#[test]
fn truncations_are_rejected_with_typed_errors() {
    let system = System::galaxy_nexus_class();
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x7240_CA7E ^ case);
        let trace = arb_trace(&mut rng);
        let grid = arb_grid(&mut rng);
        let bytes = CharacterizationGrid::characterize(&system, &trace, grid)
            .to_snapshot()
            .encode();

        for _ in 0..32 {
            let keep = rng.range_usize(0, bytes.len());
            let err = Snapshot::decode(&bytes[..keep])
                .expect_err(&format!("case {case}: truncation to {keep} bytes accepted"));
            // A cut inside the header parses as short; a cut inside the
            // payload can also surface as a dimension/checksum problem
            // depending on where it lands — but it is always typed.
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. }
                        | SnapshotError::BadMagic { .. }
                        | SnapshotError::ChecksumMismatch { .. }
                        | SnapshotError::Malformed { .. }
                ),
                "case {case}: truncation to {keep} produced unexpected {err:?}"
            );
        }
    }
}
