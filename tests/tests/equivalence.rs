//! Bit-identity of the bitset/arena/sweep fast paths against the legacy
//! `Vec`-based reference implementations.
//!
//! The flat-arena characterization, `SettingSet` feasible/cluster/region
//! kernels, and the parallel `SweepEngine` are pure refactors: every
//! number they produce must equal the reference pipeline's *to the bit*
//! (`f64` equality below is exact — the derived `PartialEq` on the result
//! types compares raw values, and times/energies are additionally checked
//! through `to_bits`). Coverage spans two grids, two benchmarks, budgets
//! from exact-Emin to unconstrained, and both cluster thresholds the
//! figures use.

use mcdvfs_core::governor::OracleOptimalGovernor;
use mcdvfs_core::{
    cluster_series, legacy, stable_regions, GovernedRun, InefficiencyBudget, OptimalFinder,
    SweepEngine,
};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::{FrequencyGrid, SplitMix64};
use mcdvfs_workloads::{Benchmark, SampleTrace};
use std::sync::Arc;

const BUDGET_VALUES: [f64; 3] = [1.0, 1.1, 1.5];
const THRESHOLDS: [f64; 2] = [0.01, 0.05];

/// The (grid, benchmark, window) cases every check runs over: the paper's
/// coarse 70-setting grid on a CPU-lean benchmark and the fine
/// 496-setting grid (which exercises all eight bitset words) on a
/// memory-heavy one.
fn cases() -> Vec<(Arc<CharacterizationGrid>, SampleTrace)> {
    let system = System::galaxy_nexus_class();
    [
        (Benchmark::Gobmk, FrequencyGrid::coarse(), 50),
        (Benchmark::Milc, FrequencyGrid::fine(), 30),
    ]
    .into_iter()
    .map(|(b, grid, n)| {
        let trace = b.trace().window(0, n);
        let data = Arc::new(CharacterizationGrid::characterize_auto(
            &system, &trace, grid,
        ));
        (data, trace)
    })
    .collect()
}

fn budgets() -> Vec<InefficiencyBudget> {
    let mut v: Vec<InefficiencyBudget> = BUDGET_VALUES
        .iter()
        .map(|&b| InefficiencyBudget::bounded(b).expect("valid budget"))
        .collect();
    v.push(InefficiencyBudget::Unconstrained);
    v
}

#[test]
fn feasible_sets_match_the_reference_filter() {
    for (data, _) in cases() {
        for budget in budgets() {
            let finder = OptimalFinder::new(budget);
            for s in 0..data.n_samples() {
                let set = finder.feasible_set(&data, s);
                let reference = legacy::feasible(&finder, &data, s);
                assert_eq!(set.to_vec(), reference);
                assert_eq!(finder.feasible(&data, s), reference);
                assert_eq!(set.count(), reference.len());
            }
        }
    }
}

#[test]
fn optimal_series_is_bit_identical_to_the_reference() {
    for (data, _) in cases() {
        for budget in budgets() {
            let finder = OptimalFinder::new(budget);
            let fast = finder.series(&data);
            let reference = legacy::series(&finder, &data);
            assert_eq!(fast, reference, "budget {budget}");
            for (f, r) in fast.iter().zip(&reference) {
                assert_eq!(f.time.value().to_bits(), r.time.value().to_bits());
                assert_eq!(f.energy.value().to_bits(), r.energy.value().to_bits());
                assert_eq!(
                    f.inefficiency.value().to_bits(),
                    r.inefficiency.value().to_bits()
                );
            }
        }
    }
}

#[test]
fn tie_tolerance_sweep_matches_the_reference_tie_break() {
    // The bitset tie-break replaced `max_by_key` over `FreqSetting` with
    // "highest qualifying index"; zero and wide tolerances stress both
    // the unique-argmin and the many-ties regimes.
    for (data, _) in cases() {
        for tol in [0.0, 0.005, 0.02] {
            let finder = OptimalFinder::new(InefficiencyBudget::bounded(1.5).unwrap())
                .with_tie_tolerance(tol);
            assert_eq!(
                finder.series(&data),
                legacy::series(&finder, &data),
                "tolerance {tol}"
            );
        }
    }
}

#[test]
fn cluster_membership_is_identical_to_the_reference() {
    for (data, _) in cases() {
        for budget in budgets() {
            for thr in THRESHOLDS {
                let clusters = cluster_series(&data, budget, thr).expect("valid threshold");
                let reference =
                    legacy::cluster_members(&data, budget, thr).expect("valid threshold");
                assert_eq!(clusters.len(), reference.len());
                for (c, members) in clusters.iter().zip(&reference) {
                    assert_eq!(c.member_indices(), members.as_slice(), "budget {budget}");
                    assert_eq!(c.member_set().to_vec(), *members);
                }
            }
        }
    }
}

#[test]
fn stable_regions_match_the_sorted_merge_reference() {
    for (data, _) in cases() {
        for budget in budgets() {
            for thr in THRESHOLDS {
                let clusters = cluster_series(&data, budget, thr).expect("valid threshold");
                let regions = stable_regions(&clusters);
                let members = legacy::cluster_members(&data, budget, thr).expect("valid threshold");
                let reference = legacy::stable_regions(&members);
                assert_eq!(regions.len(), reference.len(), "budget {budget} thr {thr}");
                for (r, l) in regions.iter().zip(&reference) {
                    assert_eq!((r.start, r.end), (l.start, l.end));
                    assert_eq!(r.chosen_index, l.chosen_index);
                    assert_eq!(r.available_indices(), l.available.as_slice());
                }
            }
        }
    }
}

#[test]
fn sweep_engine_equals_the_sequential_pipeline_at_every_point() {
    for (data, _) in cases() {
        let engine = SweepEngine::new(Arc::clone(&data));
        let all_budgets = budgets();
        let outcomes = engine
            .sweep(&all_budgets, &THRESHOLDS)
            .expect("valid thresholds");
        let mut i = 0;
        for &budget in &all_budgets {
            let series = OptimalFinder::new(budget).series(&data);
            for &thr in &THRESHOLDS {
                let o = &outcomes[i];
                assert_eq!(o.point.budget, budget);
                assert_eq!(o.point.threshold, thr);
                assert_eq!(*o.optimal.as_ref(), series);
                let clusters = cluster_series(&data, budget, thr).expect("valid threshold");
                assert_eq!(o.clusters, clusters);
                assert_eq!(o.regions, stable_regions(&clusters));
                i += 1;
            }
        }
    }
}

#[test]
fn governed_sweep_reports_equal_live_oracle_runs() {
    for (data, trace) in cases() {
        let engine = SweepEngine::new(Arc::clone(&data));
        let bounded: Vec<InefficiencyBudget> = BUDGET_VALUES
            .iter()
            .map(|&b| InefficiencyBudget::bounded(b).unwrap())
            .collect();
        for runner in [
            GovernedRun::without_overheads(),
            GovernedRun::with_paper_overheads(),
        ] {
            let swept = engine.governed_reports(&runner, &trace, &bounded);
            for (&budget, replayed) in bounded.iter().zip(&swept) {
                let mut live = OracleOptimalGovernor::new(Arc::clone(&data), budget);
                let want = runner.execute(&data, &trace, &mut live);
                // RunReport's derived PartialEq covers every accumulated
                // f64 and the governor name string.
                assert_eq!(*replayed, want, "budget {budget}");
                assert_eq!(
                    replayed.total_time().value().to_bits(),
                    want.total_time().value().to_bits()
                );
                assert_eq!(
                    replayed.total_energy().value().to_bits(),
                    want.total_energy().value().to_bits()
                );
            }
        }
    }
}

/// Asserts two characterizations are equal to the bit: every arena row,
/// every cached Emin, every cached column total, and the fingerprint.
fn assert_grids_bit_identical(got: &CharacterizationGrid, want: &CharacterizationGrid, ctx: &str) {
    assert_eq!(got, want, "{ctx}");
    assert_eq!(got.fingerprint(), want.fingerprint(), "{ctx}");
    for s in 0..want.n_samples() {
        for (g, w) in got.sample_row(s).iter().zip(want.sample_row(s)) {
            assert_eq!(g.time.value().to_bits(), w.time.value().to_bits(), "{ctx}");
            assert_eq!(
                g.cpu_energy.value().to_bits(),
                w.cpu_energy.value().to_bits(),
                "{ctx}"
            );
            assert_eq!(
                g.mem_energy.value().to_bits(),
                w.mem_energy.value().to_bits(),
                "{ctx}"
            );
            assert_eq!(g.cpi.to_bits(), w.cpi.to_bits(), "{ctx}");
        }
        assert_eq!(
            got.sample_emin(s).value().to_bits(),
            want.sample_emin(s).value().to_bits(),
            "{ctx}"
        );
    }
    for i in 0..want.n_settings() {
        assert_eq!(
            got.total_time_at(i).value().to_bits(),
            want.total_time_at(i).value().to_bits(),
            "{ctx}"
        );
        assert_eq!(
            got.total_energy_at(i).value().to_bits(),
            want.total_energy_at(i).value().to_bits(),
            "{ctx}"
        );
    }
}

#[test]
fn plan_and_incremental_updates_pin_to_the_legacy_per_cell_loop() {
    // Seeded property loop: the `EvalPlan`-compiled characterization and
    // a chain of `recharacterize` delta updates over random dirty subsets
    // must stay bit-identical to the legacy per-cell `simulate_sample`
    // loop recomputed from scratch — on both grids, at 1 and 4 threads.
    let system = System::galaxy_nexus_class();
    let mut rng = SplitMix64::new(0x5eed_cafe_f00d_0006);
    for (b, grid, n) in [
        (Benchmark::Gobmk, FrequencyGrid::coarse(), 24),
        (Benchmark::Milc, FrequencyGrid::fine(), 10),
    ] {
        let trace = b.trace().window(0, n);
        for threads in [1usize, 4] {
            let mut incremental = if threads == 1 {
                CharacterizationGrid::characterize(&system, &trace, grid)
            } else {
                CharacterizationGrid::characterize_parallel(&system, &trace, grid, threads)
            };
            let ctx = format!("{b:?} {threads} threads, full");
            assert_grids_bit_identical(
                &incremental,
                &legacy::characterize(&system, &trace, grid),
                &ctx,
            );

            let mut samples = trace.samples().to_vec();
            for round in 0..3 {
                // Dirty a random ~1/4 subset (at least one sample) with
                // random perturbations that stay in each field's domain.
                let mut dirty: Vec<usize> = (0..n).filter(|_| rng.chance(0.25)).collect();
                if dirty.is_empty() {
                    dirty.push(rng.range_usize(0, n));
                }
                for &s in &dirty {
                    samples[s].base_cpi *= rng.range_f64(0.8, 1.25);
                    samples[s].mpki *= rng.range_f64(0.5, 2.0);
                    samples[s].row_hit_rate = rng.range_f64(0.05, 0.95);
                    samples[s].write_frac = rng.range_f64(0.0, 0.5);
                    samples[s].mlp = rng.range_f64(1.0, 8.0);
                }
                // Duplicates in the dirty list must be harmless.
                if rng.chance(0.5) {
                    dirty.push(dirty[0]);
                }
                let updated = SampleTrace::new(trace.name(), samples.clone());
                incremental.recharacterize(&system, &updated, &dirty);
                let ctx = format!("{b:?} {threads} threads, round {round}");
                assert_grids_bit_identical(
                    &incremental,
                    &legacy::characterize(&system, &updated, grid),
                    &ctx,
                );
            }
        }
    }
}

#[test]
fn parallel_and_sequential_characterization_agree_on_both_grids() {
    let system = System::galaxy_nexus_class();
    for (b, grid, n) in [
        (Benchmark::Gobmk, FrequencyGrid::coarse(), 40),
        (Benchmark::Milc, FrequencyGrid::fine(), 20),
    ] {
        let trace = b.trace().window(0, n);
        let seq = CharacterizationGrid::characterize(&system, &trace, grid);
        for threads in [1, 3, 8] {
            let par = CharacterizationGrid::characterize_parallel(&system, &trace, grid, threads);
            for s in 0..seq.n_samples() {
                assert_eq!(seq.sample_row(s), par.sample_row(s), "{threads} threads");
                assert_eq!(
                    seq.sample_emin(s).value().to_bits(),
                    par.sample_emin(s).value().to_bits()
                );
            }
            for i in 0..seq.n_settings() {
                assert_eq!(
                    seq.total_time_at(i).value().to_bits(),
                    par.total_time_at(i).value().to_bits()
                );
                assert_eq!(
                    seq.total_energy_at(i).value().to_bits(),
                    par.total_energy_at(i).value().to_bits()
                );
            }
        }
    }
}
