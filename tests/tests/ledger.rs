//! Run-ledger observability across the full pipeline: for every governor
//! the crate ships, a recorded run must (a) leave the run report
//! bit-identical to an unrecorded run, and (b) produce a ledger that
//! replays into the report's totals exactly.

use mcdvfs_core::governor::{
    CoScaleGovernor, ConservativeGovernor, FixedGovernor, Governor, OndemandGovernor,
    OracleClusterGovernor, OracleOptimalGovernor, PerformanceGovernor, PowersaveGovernor,
    PredictiveGovernor, ProfileGovernor, RegionChoice, WorkloadProfile,
};
use mcdvfs_core::{GovernedRun, InefficiencyBudget};
use mcdvfs_obs::{Event, NullRecorder, Recorder, RunLedger};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::{FreqSetting, FrequencyGrid, MemFreq};
use mcdvfs_workloads::{Benchmark, SampleTrace};
use std::sync::Arc;

fn setup(b: Benchmark) -> (Arc<CharacterizationGrid>, SampleTrace) {
    let trace = b.trace();
    let data = Arc::new(CharacterizationGrid::characterize(
        &System::galaxy_nexus_class(),
        &trace,
        FrequencyGrid::coarse(),
    ));
    (data, trace)
}

/// Two fresh instances of every governor (recorded and unrecorded runs
/// need independent, identically-configured governors).
fn governor_fleet(data: &Arc<CharacterizationGrid>) -> Vec<(Box<dyn Governor>, Box<dyn Governor>)> {
    let grid = data.grid();
    let system = System::galaxy_nexus_class();
    let b = InefficiencyBudget::bounded(1.3).unwrap();
    let profile = WorkloadProfile::from_characterization(data, b, 0.05).unwrap();
    let bandwidth = move || {
        let latency = system.latency_model().clone();
        move |mhz: u32| latency.effective_bandwidth(MemFreq::from_mhz(mhz))
    };

    let make: Vec<Box<dyn Fn() -> Box<dyn Governor>>> = vec![
        Box::new(|| Box::new(FixedGovernor::new(FreqSetting::from_mhz(500, 400)))),
        Box::new(move || Box::new(PerformanceGovernor::new(grid))),
        Box::new(move || Box::new(PowersaveGovernor::new(grid))),
        {
            let bw = bandwidth();
            Box::new(move || Box::new(OndemandGovernor::new(grid, 0.6, bw.clone())))
        },
        {
            let bw = bandwidth();
            Box::new(move || Box::new(ConservativeGovernor::new(grid, 0.6, bw.clone())))
        },
        {
            let p = profile;
            Box::new(move || Box::new(ProfileGovernor::new(p.clone())))
        },
        {
            let d = Arc::clone(data);
            Box::new(move || Box::new(CoScaleGovernor::new(Arc::clone(&d), b)))
        },
        {
            let d = Arc::clone(data);
            Box::new(move || {
                Box::new(CoScaleGovernor::new(Arc::clone(&d), b).starting_from_previous())
            })
        },
        {
            let d = Arc::clone(data);
            Box::new(move || Box::new(OracleOptimalGovernor::new(Arc::clone(&d), b)))
        },
        {
            let d = Arc::clone(data);
            Box::new(move || Box::new(OracleClusterGovernor::new(Arc::clone(&d), b, 0.05).unwrap()))
        },
        {
            let d = Arc::clone(data);
            Box::new(move || {
                Box::new(
                    OracleClusterGovernor::with_choice(
                        Arc::clone(&d),
                        b,
                        0.05,
                        RegionChoice::LowestEnergy,
                    )
                    .unwrap(),
                )
            })
        },
        {
            let d = Arc::clone(data);
            Box::new(move || Box::new(PredictiveGovernor::new(Arc::clone(&d), b)))
        },
    ];
    make.iter().map(|f| (f(), f())).collect()
}

/// The tentpole invariant, exhaustively: every governor, two benchmarks,
/// both overhead models. The recorded report equals the unrecorded one
/// field for field, and replaying the ledger reproduces the totals
/// bit-exactly (checked inside `verify_ledger` via `f64::to_bits`).
#[test]
fn every_governor_ledger_replays_into_its_report() {
    for benchmark in [Benchmark::Gobmk, Benchmark::Milc] {
        let (data, trace) = setup(benchmark);
        for runner in [
            GovernedRun::with_paper_overheads(),
            GovernedRun::without_overheads(),
        ] {
            for (mut plain_gov, mut recorded_gov) in governor_fleet(&data) {
                let plain = runner.execute(&data, &trace, plain_gov.as_mut());
                let mut ledger = RunLedger::unbounded();
                let recorded =
                    runner.execute_recorded(&data, &trace, recorded_gov.as_mut(), &mut ledger);
                assert_eq!(
                    plain, recorded,
                    "{benchmark:?}/{}: recording changed the run",
                    plain.governor
                );
                recorded
                    .verify_ledger(&ledger)
                    .unwrap_or_else(|e| panic!("{benchmark:?}/{}: {e}", recorded.governor));
            }
        }
    }
}

#[test]
fn ledger_counts_match_report_counts_per_event_kind() {
    let (data, trace) = setup(Benchmark::Gobmk);
    let b = InefficiencyBudget::bounded(1.3).unwrap();
    let mut governor = OracleClusterGovernor::new(Arc::clone(&data), b, 0.05).unwrap();
    let mut ledger = RunLedger::unbounded();
    let report = GovernedRun::with_paper_overheads().execute_recorded(
        &data,
        &trace,
        &mut governor,
        &mut ledger,
    );

    let kind_count = |k: &str| ledger.events().filter(|e| e.kind() == k).count() as u64;
    assert_eq!(kind_count("sample_executed"), trace.len() as u64);
    assert_eq!(kind_count("tuning_search"), report.searches);
    assert_eq!(kind_count("frequency_transition"), report.transitions);
    // The cluster tuner searches exactly once per stable region.
    assert_eq!(kind_count("region_boundary"), report.searches);
    assert_eq!(ledger.region_lengths().iter().sum::<usize>(), trace.len());
}

#[test]
fn bounded_ring_overflow_keeps_the_newest_events() {
    let (data, trace) = setup(Benchmark::Milc);
    let b = InefficiencyBudget::bounded(1.3).unwrap();

    let mut full = RunLedger::unbounded();
    let mut gov_a = OracleOptimalGovernor::new(Arc::clone(&data), b);
    let _ =
        GovernedRun::with_paper_overheads().execute_recorded(&data, &trace, &mut gov_a, &mut full);
    assert!(full.len() > 16, "need enough events to overflow");

    let mut ring = RunLedger::with_capacity(16);
    let mut gov_b = OracleOptimalGovernor::new(Arc::clone(&data), b);
    let report =
        GovernedRun::with_paper_overheads().execute_recorded(&data, &trace, &mut gov_b, &mut ring);

    assert_eq!(ring.len(), 16);
    assert_eq!(ring.dropped() as usize, full.len() - 16);
    // The surviving window is exactly the tail of the complete stream.
    let tail: Vec<Event> = full.events().skip(full.len() - 16).copied().collect();
    let kept: Vec<Event> = ring.events().copied().collect();
    assert_eq!(kept, tail);
    // And a lossy ledger refuses verification rather than lying.
    assert!(report.verify_ledger(&ring).is_err());
}

#[test]
fn null_recorder_reports_disabled_and_swallows_events() {
    let mut null = NullRecorder;
    assert!(!null.enabled());
    null.record(Event::RegionBoundary { sample: 0 });
    // The runner's recorded path with a NullRecorder IS the plain path:
    // `execute` delegates to `execute_recorded(.., &mut NullRecorder)`,
    // so disabled recording costs one branch and allocates nothing.
    let (data, trace) = setup(Benchmark::Gobmk);
    let b = InefficiencyBudget::bounded(1.3).unwrap();
    let mut gov_a = PredictiveGovernor::new(Arc::clone(&data), b);
    let mut gov_b = PredictiveGovernor::new(Arc::clone(&data), b);
    let runner = GovernedRun::with_paper_overheads();
    let plain = runner.execute(&data, &trace, &mut gov_a);
    let nulled = runner.execute_recorded(&data, &trace, &mut gov_b, &mut NullRecorder);
    assert_eq!(plain, nulled);
}

#[test]
fn budget_alerts_observe_without_perturbing() {
    let (data, trace) = setup(Benchmark::Gobmk);
    let mut gov_a = PerformanceGovernor::new(data.grid());
    let mut gov_b = PerformanceGovernor::new(data.grid());
    let runner = GovernedRun::with_paper_overheads();
    let alerting = runner.clone().with_budget_alert(1.05);

    let plain = runner.execute(&data, &trace, &mut gov_a);
    let mut ledger = RunLedger::unbounded();
    let watched = alerting.execute_recorded(&data, &trace, &mut gov_b, &mut ledger);

    assert_eq!(plain, watched, "alerting must not change the run");
    let alerts: Vec<&Event> = ledger
        .events()
        .filter(|e| e.kind() == "budget_exceeded")
        .collect();
    assert_eq!(alerts.len(), 1, "the alert fires once, at first breach");
    match alerts[0] {
        Event::BudgetExceeded {
            inefficiency,
            budget,
            ..
        } => {
            assert!(*inefficiency > *budget);
            assert_eq!(*budget, 1.05);
        }
        other => panic!("unexpected event {other:?}"),
    }
    // The ledger still replays exactly: alerts are observation-only.
    watched.verify_ledger(&ledger).unwrap();
}
