//! End-to-end assertions of the paper's headline observations, run against
//! the full pipeline (workloads → simulator → characterization → metrics).

use mcdvfs_core::governor::{OracleClusterGovernor, OracleOptimalGovernor};
use mcdvfs_core::{GovernedRun, InefficiencyBudget, OptimalFinder};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::{FreqSetting, FrequencyGrid};
use mcdvfs_workloads::Benchmark;
use std::sync::Arc;

fn characterized(b: Benchmark) -> (Arc<CharacterizationGrid>, mcdvfs_workloads::SampleTrace) {
    let trace = b.trace();
    let data = Arc::new(CharacterizationGrid::characterize(
        &System::galaxy_nexus_class(),
        &trace,
        FrequencyGrid::coarse(),
    ));
    (data, trace)
}

/// Section IV: "Running slower doesn't mean that system is running
/// efficiently" — the lowest frequencies inflate gobmk's whole-run
/// inefficiency to ~1.5.
#[test]
fn slowest_corner_wastes_energy() {
    let (data, _) = characterized(Benchmark::Gobmk);
    let corner = data
        .grid()
        .index_of(FreqSetting::from_mhz(100, 200))
        .expect("corner on grid");
    let inefficiency = data.total_energy_at(corner) / data.min_total_energy();
    assert!(
        (1.25..1.7).contains(&inefficiency),
        "corner inefficiency {inefficiency} should be ~1.5 (paper: 1.55)"
    );
    // And it is also the slowest run.
    assert_eq!(data.longest_total_time(), data.total_time_at(corner));
}

/// Section IV: "Higher inefficiency doesn't always result in higher
/// performance" — forcing the full budget at a bad setting (1000/200 MHz)
/// runs slower than the best setting for memory-sensitive workloads.
#[test]
fn forcing_the_budget_degrades_performance() {
    let (data, _) = characterized(Benchmark::Lbm);
    let forced = data
        .grid()
        .index_of(FreqSetting::from_mhz(1000, 200))
        .expect("on grid");
    let best = data
        .grid()
        .index_of(FreqSetting::from_mhz(1000, 800))
        .expect("on grid");
    let slowdown = data.total_time_at(forced) / data.total_time_at(best);
    assert!(
        slowdown > 1.3,
        "lbm at (1000, 200) should run much slower than at (1000, 800): {slowdown}x"
    );
}

/// Section VI: maximum achievable inefficiency lands in the paper's
/// observed 1.5–2 band (we allow a slightly wider envelope).
#[test]
fn imax_band_holds_across_featured_benchmarks() {
    for b in Benchmark::featured() {
        let (data, _) = characterized(b);
        let emin = data.min_total_energy();
        let imax = (0..data.n_settings())
            .map(|i| data.total_energy_at(i) / emin)
            .fold(0.0f64, f64::max);
        assert!(
            (1.5..2.4).contains(&imax),
            "{b}: Imax {imax} outside the observed band"
        );
    }
}

/// Figure 2 / Section V: bzip2 is CPU bound — at 1000 MHz CPU its
/// performance between 200 and 800 MHz memory stays within ~3%, while
/// dropping the memory frequency saves system energy.
#[test]
fn bzip2_memory_insensitivity_anchor() {
    let (data, _) = characterized(Benchmark::Bzip2);
    let slow_mem = data
        .grid()
        .index_of(FreqSetting::from_mhz(1000, 200))
        .expect("on grid");
    let fast_mem = data
        .grid()
        .index_of(FreqSetting::from_mhz(1000, 800))
        .expect("on grid");
    let loss = data.total_time_at(slow_mem) / data.total_time_at(fast_mem) - 1.0;
    assert!(loss < 0.03, "bzip2 memory sensitivity {loss} exceeds 3%");
    let saving = 1.0 - data.total_energy_at(slow_mem) / data.total_energy_at(fast_mem);
    assert!(
        (0.01..0.12).contains(&saving),
        "dropping idle memory frequency should save a few % of system energy, got {saving}"
    );
}

/// Figure 3: under a tight budget the optimal settings follow the phases —
/// memory-intensive samples get higher memory frequency than CPU-intensive
/// samples.
#[test]
fn optimal_settings_follow_phases() {
    let (data, trace) = characterized(Benchmark::Gobmk);
    let series = OptimalFinder::new(InefficiencyBudget::bounded(1.3).unwrap()).series(&data);
    let avg_mem = |pred: &dyn Fn(f64) -> bool| -> f64 {
        let v: Vec<f64> = series
            .iter()
            .filter(|c| pred(trace.get(c.sample).unwrap().mpki))
            .map(|c| f64::from(c.setting.mem.mhz()))
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let memory_phases = avg_mem(&|mpki| mpki > 10.0);
    let cpu_phases = avg_mem(&|mpki| mpki < 4.0);
    assert!(
        memory_phases > cpu_phases + 100.0,
        "memory phases at {memory_phases} MHz vs CPU phases at {cpu_phases} MHz"
    );
}

/// Figure 10: performance improves monotonically with the budget and every
/// run stays within it.
#[test]
fn performance_improves_monotonically_with_budget() {
    let runner = GovernedRun::without_overheads();
    for b in [Benchmark::Gcc, Benchmark::Milc] {
        let (data, trace) = characterized(b);
        let mut prev = f64::INFINITY;
        for budget_v in [1.0, 1.1, 1.2, 1.3, 1.6] {
            let budget = InefficiencyBudget::bounded(budget_v).unwrap();
            let mut governor = OracleOptimalGovernor::new(Arc::clone(&data), budget);
            let report = runner.execute(&data, &trace, &mut governor);
            let t = report.total_time().value();
            assert!(t <= prev * 1.006, "{b} at {budget_v}: time went up");
            prev = t;
            assert!(
                report.work_inefficiency()
                    <= budget_v * (1.0 + InefficiencyBudget::NOISE_TOLERANCE) + 1e-9,
                "{b} violated budget {budget_v}: {}",
                report.work_inefficiency()
            );
        }
    }
}

/// Figure 11: cluster-following degradation is bounded by the threshold
/// (no overheads), and with the paper's overheads the cluster tuner beats
/// exact tracking end-to-end when tracking flaps (bzip2 at 1.6).
#[test]
fn cluster_tradeoffs_match_figure_11() {
    let (data, trace) = characterized(Benchmark::Milc);
    let budget = InefficiencyBudget::bounded(1.3).unwrap();
    let free = GovernedRun::without_overheads();
    let mut tracker = OracleOptimalGovernor::new(Arc::clone(&data), budget);
    let reference = free.execute(&data, &trace, &mut tracker);
    for thr in [0.01, 0.03, 0.05] {
        let mut governor = OracleClusterGovernor::new(Arc::clone(&data), budget, thr).unwrap();
        let report = free.execute(&data, &trace, &mut governor);
        assert!(
            report.perf_degradation_vs(&reference) <= thr + 1e-9,
            "threshold {thr} violated"
        );
    }

    let (data, trace) = characterized(Benchmark::Bzip2);
    let budget = InefficiencyBudget::bounded(1.6).unwrap();
    let charged = GovernedRun::with_paper_overheads();
    let mut tracker = OracleOptimalGovernor::new(Arc::clone(&data), budget);
    let tracked = charged.execute(&data, &trace, &mut tracker);
    let mut governor = OracleClusterGovernor::new(Arc::clone(&data), budget, 0.05).unwrap();
    let clustered = charged.execute(&data, &trace, &mut governor);
    assert!(clustered.total_time() < tracked.total_time());
    assert!(clustered.searches < tracked.searches);
}

/// Section VI-C calibration: one full tuning event over the 70-setting
/// space costs on the order of 500 µs and 30 µJ including the hardware
/// transition.
#[test]
fn tuning_overhead_calibration() {
    let search = mcdvfs_core::TuningCostModel::paper_calibrated().search_cost(70);
    let transition = mcdvfs_sim::TransitionModel::mobile_soc().cost(
        FreqSetting::from_mhz(1000, 800),
        FreqSetting::from_mhz(500, 400),
    );
    let total_us = search.latency.as_micros() + transition.latency.as_micros();
    let total_uj = search.energy.as_micros() + transition.energy.as_micros();
    assert!(
        (400.0..600.0).contains(&total_us),
        "tuning latency {total_us} µs"
    );
    assert!(
        (20.0..45.0).contains(&total_uj),
        "tuning energy {total_uj} µJ"
    );
}
