//! Property tests for the kernel-interface shim: arbitrary userspace
//! behaviour must never crash the stack or drive the hardware off-grid.

use mcdvfs_kernel::KernelShim;
use mcdvfs_types::FrequencyGrid;
use proptest::prelude::*;

/// Arbitrary attribute paths, mixing valid and invalid ones.
fn arb_path() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("cpufreq/scaling_governor".to_string()),
        Just("cpufreq/scaling_setspeed".to_string()),
        Just("cpufreq/scaling_min_freq".to_string()),
        Just("cpufreq/scaling_max_freq".to_string()),
        Just("cpufreq/scaling_cur_freq".to_string()),
        Just("devfreq/governor".to_string()),
        Just("devfreq/userspace/set_freq".to_string()),
        Just("devfreq/min_freq".to_string()),
        Just("devfreq/max_freq".to_string()),
        "[a-z/_]{1,24}",
    ]
}

/// Arbitrary written values: governor names, plausible frequencies, noise.
fn arb_value() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("performance".to_string()),
        Just("powersave".to_string()),
        Just("userspace".to_string()),
        Just("ondemand".to_string()),
        (1u64..2_000_000_000).prop_map(|n| n.to_string()),
        "[ -~]{0,16}",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whatever userspace throws at the shim, the hardware setting stays
    /// on the platform grid and reads never panic.
    #[test]
    fn shim_survives_arbitrary_userspace(
        ops in proptest::collection::vec((arb_path(), arb_value()), 1..40)
    ) {
        let grid = FrequencyGrid::coarse();
        let mut shim = KernelShim::new(grid);
        for (path, value) in &ops {
            let _ = shim.write(path, value); // errors are fine, panics are not
            let _ = shim.read(path);
            prop_assert!(grid.contains(shim.controller().current()));
        }
        // Canonical attributes stay readable and parseable afterwards.
        let cur: u64 = shim
            .read("cpufreq/scaling_cur_freq")
            .unwrap()
            .parse()
            .expect("cur_freq is numeric");
        prop_assert!((100_000..=1_000_000).contains(&cur));
    }

    /// Bounds invariants hold under any write sequence: min ≤ cur ≤ max on
    /// both domains.
    #[test]
    fn bounds_always_bracket_the_target(
        ops in proptest::collection::vec((arb_path(), arb_value()), 1..40)
    ) {
        let mut shim = KernelShim::new(FrequencyGrid::coarse());
        for (path, value) in &ops {
            let _ = shim.write(path, value);
            let min: u64 = shim.read("cpufreq/scaling_min_freq").unwrap().parse().unwrap();
            let max: u64 = shim.read("cpufreq/scaling_max_freq").unwrap().parse().unwrap();
            let cur: u64 = shim.read("cpufreq/scaling_cur_freq").unwrap().parse().unwrap();
            prop_assert!(min <= max, "cpufreq bounds inverted");
            prop_assert!((min..=max).contains(&cur), "cpufreq target escaped bounds");
            let min: u64 = shim.read("devfreq/min_freq").unwrap().parse().unwrap();
            let max: u64 = shim.read("devfreq/max_freq").unwrap().parse().unwrap();
            let cur: u64 = shim.read("devfreq/cur_freq").unwrap().parse().unwrap();
            prop_assert!(min <= max, "devfreq bounds inverted");
            prop_assert!((min..=max).contains(&cur), "devfreq target escaped bounds");
        }
    }

    /// Transition counting only moves on *effective* changes: replaying the
    /// same write twice never double-counts.
    #[test]
    fn idempotent_writes_do_not_transition(freq_mhz in 1u32..1200) {
        let mut shim = KernelShim::new(FrequencyGrid::coarse());
        shim.write("cpufreq/scaling_governor", "userspace").unwrap();
        let khz = format!("{}", u64::from(freq_mhz) * 1000);
        let _ = shim.write("cpufreq/scaling_setspeed", &khz);
        let after_first = shim.controller().transition_count();
        let _ = shim.write("cpufreq/scaling_setspeed", &khz);
        prop_assert_eq!(shim.controller().transition_count(), after_first);
    }
}
