//! Property tests for the kernel-interface shim: arbitrary userspace
//! behaviour must never crash the stack or drive the hardware off-grid.
//!
//! Seeded [`SplitMix64`] case generators replace the external `proptest`
//! dependency (the build must work offline); failures print the case seed
//! for exact reproduction.

use mcdvfs_kernel::KernelShim;
use mcdvfs_types::{FrequencyGrid, SplitMix64};

/// Arbitrary attribute paths, mixing valid and invalid ones.
fn arb_path(rng: &mut SplitMix64) -> String {
    const KNOWN: [&str; 9] = [
        "cpufreq/scaling_governor",
        "cpufreq/scaling_setspeed",
        "cpufreq/scaling_min_freq",
        "cpufreq/scaling_max_freq",
        "cpufreq/scaling_cur_freq",
        "devfreq/governor",
        "devfreq/userspace/set_freq",
        "devfreq/min_freq",
        "devfreq/max_freq",
    ];
    if rng.chance(0.9) {
        KNOWN[rng.range_usize(0, KNOWN.len())].to_string()
    } else {
        // Random noise path over [a-z/_]{1,24}.
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz/_";
        let len = rng.range_usize(1, 25);
        (0..len)
            .map(|_| ALPHABET[rng.range_usize(0, ALPHABET.len())] as char)
            .collect()
    }
}

/// Arbitrary written values: governor names, plausible frequencies, noise.
fn arb_value(rng: &mut SplitMix64) -> String {
    match rng.range_usize(0, 6) {
        0 => "performance".to_string(),
        1 => "powersave".to_string(),
        2 => "userspace".to_string(),
        3 => "ondemand".to_string(),
        4 => (1 + rng.next_u64() % 2_000_000_000).to_string(),
        _ => {
            // Printable ASCII noise of length 0..=16.
            let len = rng.range_usize(0, 17);
            (0..len)
                .map(|_| (b' ' + rng.range_usize(0, 95) as u8) as char)
                .collect()
        }
    }
}

fn arb_ops(rng: &mut SplitMix64) -> Vec<(String, String)> {
    let n = rng.range_usize(1, 40);
    (0..n).map(|_| (arb_path(rng), arb_value(rng))).collect()
}

/// Whatever userspace throws at the shim, the hardware setting stays on
/// the platform grid and reads never panic.
#[test]
fn shim_survives_arbitrary_userspace() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::new(0x5EED_0001 ^ case);
        let grid = FrequencyGrid::coarse();
        let mut shim = KernelShim::new(grid);
        for (path, value) in &arb_ops(&mut rng) {
            let _ = shim.write(path, value); // errors are fine, panics are not
            let _ = shim.read(path);
            assert!(grid.contains(shim.controller().current()), "case {case}");
        }
        // Canonical attributes stay readable and parseable afterwards.
        let cur: u64 = shim
            .read("cpufreq/scaling_cur_freq")
            .unwrap()
            .parse()
            .expect("cur_freq is numeric");
        assert!((100_000..=1_000_000).contains(&cur), "case {case}");
    }
}

/// Bounds invariants hold under any write sequence: min ≤ cur ≤ max on
/// both domains.
#[test]
fn bounds_always_bracket_the_target() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::new(0x5EED_0002 ^ case);
        let mut shim = KernelShim::new(FrequencyGrid::coarse());
        for (path, value) in &arb_ops(&mut rng) {
            let _ = shim.write(path, value);
            let min: u64 = shim
                .read("cpufreq/scaling_min_freq")
                .unwrap()
                .parse()
                .unwrap();
            let max: u64 = shim
                .read("cpufreq/scaling_max_freq")
                .unwrap()
                .parse()
                .unwrap();
            let cur: u64 = shim
                .read("cpufreq/scaling_cur_freq")
                .unwrap()
                .parse()
                .unwrap();
            assert!(min <= max, "case {case}: cpufreq bounds inverted");
            assert!(
                (min..=max).contains(&cur),
                "case {case}: cpufreq target escaped bounds"
            );
            let min: u64 = shim.read("devfreq/min_freq").unwrap().parse().unwrap();
            let max: u64 = shim.read("devfreq/max_freq").unwrap().parse().unwrap();
            let cur: u64 = shim.read("devfreq/cur_freq").unwrap().parse().unwrap();
            assert!(min <= max, "case {case}: devfreq bounds inverted");
            assert!(
                (min..=max).contains(&cur),
                "case {case}: devfreq target escaped bounds"
            );
        }
    }
}

/// Transition counting only moves on *effective* changes: replaying the
/// same write twice never double-counts.
#[test]
fn idempotent_writes_do_not_transition() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::new(0x5EED_0003 ^ case);
        let freq_mhz = 1 + rng.range_usize(0, 1199) as u64;
        let mut shim = KernelShim::new(FrequencyGrid::coarse());
        shim.write("cpufreq/scaling_governor", "userspace").unwrap();
        let khz = format!("{}", freq_mhz * 1000);
        let _ = shim.write("cpufreq/scaling_setspeed", &khz);
        let after_first = shim.controller().transition_count();
        let _ = shim.write("cpufreq/scaling_setspeed", &khz);
        assert_eq!(
            shim.controller().transition_count(),
            after_first,
            "case {case}"
        );
    }
}
