//! Cross-model validation: the fast analytic components used by the grid
//! characterization are checked against the detailed event-driven and
//! trace-driven models built alongside them.

use mcdvfs_cpu::{microbench, CacheHierarchy, MemAccess};
use mcdvfs_dram::{LatencyModel, MemoryController, Request};
use mcdvfs_sim::System;
use mcdvfs_types::{FreqSetting, MemFreq, SampleCharacteristics};

/// The analytic latency model and the event-driven controller must agree
/// on the *shape* of latency vs memory frequency for a moderately loaded,
/// mixed-locality stream: both monotonically decreasing, and within 2x of
/// each other in absolute terms.
#[test]
fn analytic_latency_tracks_event_driven_controller() {
    let analytic = LatencyModel::lpddr3();
    // A mixed stream: 60% sequential (row friendly), 40% scattered.
    let make_stream = |f: MemFreq| -> Vec<Request> {
        let gap_ns = 120.0;
        let mut state = 99u64;
        (0..800u64)
            .map(|i| {
                let addr = if i % 5 < 3 {
                    i * 64
                } else {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state % (64 * 1024 * 1024 / 64)) * 64
                };
                Request {
                    arrival_cycle: f.cycles_in_ns(gap_ns * i as f64),
                    addr,
                    write: i % 4 == 0,
                }
            })
            .collect()
    };

    let mut prev_event = f64::INFINITY;
    let mut prev_analytic = f64::INFINITY;
    for mhz in [200, 400, 600, 800] {
        let f = MemFreq::from_mhz(mhz);
        let mut ctrl = MemoryController::lpddr3(f);
        let results = ctrl.run(&make_stream(f));
        let stats = MemoryController::stats(&results, f, ctrl.refreshes());

        let demand = 800.0 * 64.0 / (120e-9 * 800.0); // bytes per second offered
        let rho = analytic.utilization(f, demand, 1.0);
        let predicted = analytic.avg_latency_ns(f, stats.row_hit_rate, rho);

        assert!(
            stats.avg_latency_ns < prev_event,
            "event-driven latency must fall with frequency"
        );
        assert!(
            predicted < prev_analytic,
            "analytic latency must fall with frequency"
        );
        prev_event = stats.avg_latency_ns;
        prev_analytic = predicted;

        let ratio = predicted / stats.avg_latency_ns;
        assert!(
            (0.5..2.0).contains(&ratio),
            "{mhz} MHz: analytic {predicted:.1} ns vs event-driven {:.1} ns (ratio {ratio:.2})",
            stats.avg_latency_ns
        );
    }
}

/// MPKI values assumed by the workload profiles are achievable by real
/// reference streams through the modelled cache hierarchy: a streaming
/// kernel over a large footprint lands in the same MPKI decade as the
/// lbm profile.
#[test]
fn cache_simulator_grounds_workload_mpki() {
    // Fine-grained streaming: four 16-byte touches per 64-byte line (a real
    // array sweep issues several accesses per line), over a footprint
    // larger than the L2.
    let streaming = microbench::characterize(
        microbench::Kernel::Stride {
            bytes: 256 * 1024 * 1024,
            stride: 16,
        },
        250, // memory operations per kilo-instruction
    );
    let lbm_like = mcdvfs_workloads::Benchmark::Lbm.trace().stats().mpki_mean;
    let measured = streaming.characteristics.mpki;
    assert!(
        measured > lbm_like / 4.0 && measured < lbm_like * 4.0,
        "streaming kernel mpki {measured} vs lbm profile {lbm_like}"
    );
}

/// A cache-resident kernel produces effectively zero DRAM traffic — the
/// bzip2-class profile assumption.
#[test]
fn cache_resident_kernel_matches_cpu_bound_profiles() {
    let mut caches = CacheHierarchy::gem5_default();
    // 48 KB working set scanned repeatedly.
    let addrs: Vec<MemAccess> = (0..48 * 1024u64).step_by(64).map(MemAccess::load).collect();
    caches.run_trace(addrs.iter().copied());
    caches.reset_stats();
    for _ in 0..10 {
        caches.run_trace(addrs.iter().copied());
    }
    assert_eq!(caches.dram_accesses(), 0, "warm resident set never misses");
}

/// The System's sample measurements respond to cache-derived
/// characteristics consistently: feeding the microbenchmark-derived
/// pointer-chase profile produces much longer runtimes at low memory
/// frequency than the ALU profile.
#[test]
fn system_responds_to_measured_kernel_profiles() {
    let system = System::galaxy_nexus_class();
    let chase = microbench::characterize(
        microbench::Kernel::PointerChase {
            bytes: 128 * 1024 * 1024,
        },
        150,
    )
    .characteristics;
    let alu = microbench::characterize(microbench::Kernel::AluSpin, 10).characteristics;

    let at = |chars: &SampleCharacteristics, mem: u32| {
        system
            .simulate_sample(chars, FreqSetting::from_mhz(1000, mem))
            .time
            .value()
    };
    let chase_sensitivity = at(&chase, 200) / at(&chase, 800);
    let alu_sensitivity = at(&alu, 200) / at(&alu, 800);
    assert!(
        chase_sensitivity > 1.2,
        "pointer chase must care about memory frequency: {chase_sensitivity}"
    );
    assert!(
        alu_sensitivity < 1.02,
        "ALU spin must not care about memory frequency: {alu_sensitivity}"
    );
}

/// Determinism end to end: two identical characterization runs produce
/// identical matrices (seeded workloads + hash-derived measurement noise).
#[test]
fn characterization_is_deterministic() {
    use mcdvfs_sim::CharacterizationGrid;
    use mcdvfs_types::FrequencyGrid;
    let system = System::galaxy_nexus_class();
    let trace = mcdvfs_workloads::Benchmark::Gobmk.trace().window(0, 6);
    let grid = FrequencyGrid::coarse();
    let a = CharacterizationGrid::characterize(&system, &trace, grid);
    let b = CharacterizationGrid::characterize(&system, &trace, grid);
    assert_eq!(a, b);
}
