//! Warm-start bit-identity: a shard restored from a snapshot must be
//! indistinguishable on the wire from one characterized in-process.
//!
//! Two servers share one snapshot directory. The first (cold) process
//! characterizes its tenants on first touch and persists each grid; the
//! second (warm) process warm-starts every tenant from those snapshots.
//! Both must answer `optimal_setting` and `cluster` byte-identically
//! (`f64::to_bits`, not epsilon) to a direct [`SweepEngine`] over the
//! same inputs — and the same holds when shard pressure evicts a warm
//! tenant and it is rebuilt from the store instead of recharacterized.

use mcdvfs_core::{InefficiencyBudget, SweepEngine};
use mcdvfs_serve::{
    Client, Request, Response, ServeState, Server, ServerConfig, TenantSpec, WireStats,
};
use mcdvfs_sim::System;
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::{Benchmark, SampleTrace};
use std::path::PathBuf;

const BUDGET: f64 = 1.3;
const THRESHOLD: f64 = 0.05;
const SAMPLES: usize = 10;

fn temp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mcdvfs-warm-e2e-{tag}-{}", std::process::id()))
}

fn gobmk_trace() -> SampleTrace {
    Benchmark::Gobmk.trace().window(0, SAMPLES)
}

fn gobmk_engine() -> SweepEngine {
    SweepEngine::characterize(
        &System::galaxy_nexus_class(),
        &gobmk_trace(),
        FrequencyGrid::coarse(),
    )
}

fn tenant_state(system: &System) -> ServeState {
    let mut state = ServeState::new(gobmk_engine(), gobmk_trace());
    for (name, benchmark) in [("bzip2", Benchmark::Bzip2), ("gcc", Benchmark::Gcc)] {
        state = state.with_tenant(
            name,
            TenantSpec::new(
                system.clone(),
                benchmark.trace().window(0, SAMPLES),
                FrequencyGrid::coarse(),
            ),
        );
    }
    state
}

fn stats(client: &mut Client) -> WireStats {
    match client.request(&Request::Stats) {
        Ok(Response::Stats(stats)) => stats,
        other => panic!("stats failed: {other:?}"),
    }
}

/// Pins an `optimal_setting` reply to a direct engine, bit for bit.
fn pin_optimal(reply: &Response, reference: &SweepEngine, label: &str) {
    let budget = InefficiencyBudget::bounded(BUDGET).unwrap();
    let Response::OptimalSetting(choices) = reply else {
        panic!("{label}: wrong reply kind");
    };
    let expect = reference.optimal_series(budget);
    assert_eq!(choices.len(), expect.len(), "{label}: length");
    for (wire, direct) in choices.iter().zip(&expect) {
        assert_eq!(wire.sample, direct.sample, "{label}");
        assert_eq!(wire.index, direct.index, "{label}");
        assert_eq!(wire.cpu_mhz, direct.setting.cpu.mhz(), "{label}");
        assert_eq!(wire.mem_mhz, direct.setting.mem.mhz(), "{label}");
        assert_eq!(
            wire.time_s.to_bits(),
            direct.time.value().to_bits(),
            "{label}: time bits"
        );
        assert_eq!(
            wire.energy_j.to_bits(),
            direct.energy.value().to_bits(),
            "{label}: energy bits"
        );
        assert_eq!(
            wire.inefficiency.to_bits(),
            direct.inefficiency.value().to_bits(),
            "{label}: inefficiency bits"
        );
    }
}

/// Pins a `cluster` reply to a direct engine, bit for bit.
fn pin_cluster(reply: &Response, reference: &SweepEngine, label: &str) {
    let budget = InefficiencyBudget::bounded(BUDGET).unwrap();
    let Response::Cluster(clusters) = reply else {
        panic!("{label}: wrong reply kind");
    };
    let expect = reference.cluster_detail(budget, THRESHOLD).unwrap();
    let data = reference.data();
    assert_eq!(clusters.len(), expect.len(), "{label}: length");
    for (wire, direct) in clusters.iter().zip(&expect) {
        assert_eq!(wire.sample, direct.sample, "{label}");
        assert_eq!(wire.optimal_index, direct.optimal.index, "{label}: anchor");
        assert_eq!(wire.members, direct.member_indices(), "{label}: members");
        assert_eq!(wire.cpu_mhz, direct.cpu_range_mhz(data), "{label}: cpu");
        assert_eq!(wire.mem_mhz, direct.mem_range_mhz(data), "{label}: mem");
    }
}

#[test]
fn warm_started_shards_answer_bit_identically_to_cold_ones() {
    let system = System::galaxy_nexus_class();
    let dir = temp_store("coldwarm");
    let _ = std::fs::remove_dir_all(&dir);
    let budget = InefficiencyBudget::bounded(BUDGET).unwrap();
    let optimal = Request::OptimalSetting { budget };
    let cluster = Request::Cluster {
        budget,
        threshold: THRESHOLD,
    };

    // Direct references both processes must match bit for bit.
    let direct: Vec<(&str, SweepEngine)> = [("bzip2", Benchmark::Bzip2), ("gcc", Benchmark::Gcc)]
        .into_iter()
        .map(|(name, b)| {
            let trace = b.trace().window(0, SAMPLES);
            (
                name,
                SweepEngine::characterize(&system, &trace, FrequencyGrid::coarse()),
            )
        })
        .collect();

    let config = || ServerConfig {
        workers: 2,
        snapshot_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    // Cold process: first touch characterizes and persists.
    let mut cold_replies = Vec::new();
    let cold = Server::start("127.0.0.1:0", tenant_state(&system), config()).unwrap();
    let mut client = Client::connect(cold.addr()).unwrap();
    for (name, reference) in &direct {
        let opt = client.request_for(Some(name), &optimal).unwrap();
        pin_optimal(&opt, reference, &format!("cold {name} optimal"));
        let clu = client.request_for(Some(name), &cluster).unwrap();
        pin_cluster(&clu, reference, &format!("cold {name} cluster"));
        cold_replies.push((opt, clu));
    }
    let cold_stats = stats(&mut client);
    assert_eq!(cold_stats.store.hits, 0, "empty store cannot hit");
    assert_eq!(cold_stats.store.misses, 2, "one miss per tenant");
    drop(client);
    let _ = cold.shutdown();

    // Warm process: every tenant restores from the cold run's snapshots.
    let warm = Server::start("127.0.0.1:0", tenant_state(&system), config()).unwrap();
    let mut client = Client::connect(warm.addr()).unwrap();
    for ((name, reference), (cold_opt, cold_clu)) in direct.iter().zip(&cold_replies) {
        let opt = client.request_for(Some(name), &optimal).unwrap();
        pin_optimal(&opt, reference, &format!("warm {name} optimal"));
        assert_eq!(opt, *cold_opt, "warm {name} optimal != cold reply");
        let clu = client.request_for(Some(name), &cluster).unwrap();
        pin_cluster(&clu, reference, &format!("warm {name} cluster"));
        assert_eq!(clu, *cold_clu, "warm {name} cluster != cold reply");
    }
    let warm_stats = stats(&mut client);
    assert_eq!(warm_stats.store.hits, 2, "one warm start per tenant");
    assert_eq!(warm_stats.store.misses, 0, "nothing recharacterized");
    assert!(warm_stats.store.bytes_read > 0, "snapshots were read");
    drop(client);
    let _ = warm.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evicted_shards_rebuild_from_the_store_bit_identically() {
    let system = System::galaxy_nexus_class();
    let dir = temp_store("evict");
    let _ = std::fs::remove_dir_all(&dir);
    let budget = InefficiencyBudget::bounded(BUDGET).unwrap();
    let query = Request::OptimalSetting { budget };

    let direct_bzip2 = SweepEngine::characterize(
        &system,
        &Benchmark::Bzip2.trace().window(0, SAMPLES),
        FrequencyGrid::coarse(),
    );
    let direct_gcc = SweepEngine::characterize(
        &system,
        &Benchmark::Gcc.trace().window(0, SAMPLES),
        FrequencyGrid::coarse(),
    );

    // max_shards = 2 with the pinned default resident: bzip2 and gcc
    // can never be resident together, so every alternation evicts.
    let server = Server::start(
        "127.0.0.1:0",
        tenant_state(&system),
        ServerConfig {
            workers: 2,
            max_shards: 2,
            snapshot_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // First touches miss the empty store, characterize, persist.
    let reply = client.request_for(Some("bzip2"), &query).unwrap();
    pin_optimal(&reply, &direct_bzip2, "bzip2 cold build");
    let reply = client.request_for(Some("gcc"), &query).unwrap();
    pin_optimal(&reply, &direct_gcc, "gcc cold build (evicts bzip2)");

    // Rebuilds after eviction warm-start from the store — and still
    // answer the exact same bits as the direct engines.
    let reply = client.request_for(Some("bzip2"), &query).unwrap();
    pin_optimal(&reply, &direct_bzip2, "bzip2 warm rebuild");
    let reply = client.request_for(Some("gcc"), &query).unwrap();
    pin_optimal(&reply, &direct_gcc, "gcc warm rebuild");

    let stats = stats(&mut client);
    assert_eq!(stats.evictions, 3, "every alternation evicted");
    assert_eq!(stats.store.misses, 2, "only the first touches missed");
    assert_eq!(stats.store.hits, 2, "both rebuilds warm-started");
    assert!(stats.store.bytes_read > 0, "snapshots were read");
    drop(client);
    let _ = server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
