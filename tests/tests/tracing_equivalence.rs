//! Tracing is purely observational: running the characterization → sweep
//! pipeline with the profiler enabled must not change a single byte of
//! any exported artifact, at any thread count. These tests pin that
//! contract, exercise join-time metric aggregation across ≥4 workers,
//! and round-trip a provenance manifest against files on disk.

use mcdvfs_bench::{checksum_string, ArtifactEntry, Manifest};
use mcdvfs_core::report::Table;
use mcdvfs_core::sweep::fan_out_profiled;
use mcdvfs_core::{InefficiencyBudget, SweepEngine};
use mcdvfs_obs::Profiler;
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Benchmark;
use std::collections::BTreeMap;
use std::sync::Arc;

const BUDGETS: [f64; 2] = [1.1, 1.3];
const THRESHOLDS: [f64; 2] = [0.01, 0.05];

/// Runs the full pipeline at `threads` workers under `profiler` and
/// renders every result to bytes: a figure-style CSV plus an exhaustive
/// `Debug` dump (shortest-round-trip floats, so any drift shows).
fn pipeline_bytes(threads: usize, profiler: Option<&Arc<Profiler>>) -> (String, String) {
    let system = System::galaxy_nexus_class();
    let trace = Benchmark::Gobmk.trace();
    let data = Arc::new(CharacterizationGrid::characterize_profiled(
        &system,
        &trace,
        FrequencyGrid::coarse(),
        threads,
        profiler.map_or(Profiler::noop(), Arc::as_ref),
    ));
    let budgets: Vec<InefficiencyBudget> = BUDGETS
        .iter()
        .map(|&v| InefficiencyBudget::bounded(v).expect("valid budget"))
        .collect();
    let mut engine = SweepEngine::with_threads(Arc::clone(&data), threads);
    if let Some(p) = profiler {
        engine = engine.with_profiler(Arc::clone(p));
    }
    let outcomes = engine.sweep(&budgets, &THRESHOLDS).expect("valid sweep");

    let mut table = Table::new(vec!["budget", "threshold", "clusters", "regions"]);
    for outcome in &outcomes {
        table.row(vec![
            format!("{:?}", outcome.point.budget),
            format!("{:?}", outcome.point.threshold),
            outcome.clusters.len().to_string(),
            outcome.regions.len().to_string(),
        ]);
    }

    let mut dump = String::new();
    for s in 0..data.n_samples() {
        dump.push_str(&format!("{:?}\n", data.sample_row(s)));
    }
    for outcome in &outcomes {
        dump.push_str(&format!(
            "{:?} {:?} {:?}\n",
            outcome.optimal, outcome.clusters, outcome.regions
        ));
    }
    (table.to_csv(), dump)
}

#[test]
fn profiling_changes_no_byte_at_any_thread_count() {
    let (baseline_csv, baseline_dump) = pipeline_bytes(1, None);
    for threads in [1, 4] {
        for profiled in [false, true] {
            let profiler = profiled.then(|| Arc::new(Profiler::enabled()));
            let (csv, dump) = pipeline_bytes(threads, profiler.as_ref());
            assert_eq!(
                csv, baseline_csv,
                "CSV drifted at threads={threads} profiled={profiled}"
            );
            assert_eq!(
                dump, baseline_dump,
                "raw results drifted at threads={threads} profiled={profiled}"
            );
            if let Some(p) = profiler {
                let paths: Vec<String> = p.phase_totals().iter().map(|t| t.path.clone()).collect();
                for expected in ["characterize", "sweep", "sweep/optimal", "sweep/points"] {
                    assert!(
                        paths.iter().any(|p| p == expected),
                        "missing {expected} phase in {paths:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn disabled_profiler_records_nothing() {
    let profiler = Arc::new(Profiler::disabled());
    let _ = pipeline_bytes(2, Some(&profiler));
    assert!(profiler.spans().is_empty());
    assert!(profiler.phase_totals().is_empty());
}

#[test]
fn fan_out_metrics_aggregate_across_four_workers() {
    let profiler = Profiler::enabled();
    let jobs: Vec<u64> = (0..16).collect();
    let doubled = fan_out_profiled(&jobs, 4, &profiler, 0, "grid", |&j, metrics| {
        metrics.incr("grid.touched", 1);
        j * 2
    });
    assert_eq!(doubled, jobs.iter().map(|j| j * 2).collect::<Vec<_>>());

    let metrics = profiler.metrics();
    assert_eq!(metrics.counter("grid.touched"), 16);
    assert_eq!(metrics.counter("grid.jobs"), 16);
    let workers = metrics.histogram("grid.worker_jobs").expect("per-worker");
    assert_eq!(workers.total(), 4, "one job-count observation per worker");
    assert_eq!(workers.mean(), Some(4.0), "16 jobs over 4 workers");
    let spans = profiler.spans();
    let worker_spans = spans.iter().filter(|s| s.name == "worker").count();
    assert_eq!(worker_spans, 4);
    let phase = spans.iter().find(|s| s.name == "grid").expect("phase span");
    assert!(spans
        .iter()
        .filter(|s| s.name == "worker")
        .all(|s| s.parent == phase.id));
}

#[test]
fn manifest_round_trips_and_validates_files_on_disk() {
    let dir = std::env::temp_dir().join(format!("mcdvfs_manifest_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let body = b"sample,time\n0,1.5\n";
    std::fs::write(dir.join("fig_test.csv"), body).expect("write artifact");

    let mut manifest = Manifest::default();
    manifest.upsert(ArtifactEntry {
        path: "fig_test.csv".to_string(),
        bytes: body.len() as u64,
        checksum: checksum_string(body),
        producer: "tracing_equivalence".to_string(),
        threads: 1,
        config: BTreeMap::from([("grid".to_string(), "coarse-70".to_string())]),
        phases: Vec::new(),
    });
    assert!(
        manifest.validate(&dir).is_empty(),
        "fresh manifest must validate cleanly"
    );

    let reloaded = Manifest::from_text(&manifest.to_text()).expect("round trip");
    assert_eq!(reloaded.artifacts.len(), 1);
    assert_eq!(reloaded.artifacts[0], manifest.artifacts[0]);

    // Drift the file; the checksum must catch it.
    std::fs::write(dir.join("fig_test.csv"), b"sample,time\n0,9.9\n").expect("rewrite");
    let problems = manifest.validate(&dir);
    assert!(
        problems.iter().any(|p| p.contains("checksum")),
        "expected a checksum mismatch, got {problems:?}"
    );

    // An uncovered CSV is a manifest gap.
    std::fs::write(dir.join("orphan.csv"), b"x\n").expect("write orphan");
    let problems = manifest.validate(&dir);
    assert!(
        problems.iter().any(|p| p.contains("orphan.csv")),
        "expected orphan coverage problem, got {problems:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
