//! End-to-end governor behaviour across the full pipeline.

use mcdvfs_core::governor::{
    CoScaleGovernor, ConservativeGovernor, FixedGovernor, Governor, OndemandGovernor,
    OracleClusterGovernor, OracleOptimalGovernor, PerformanceGovernor, PowersaveGovernor,
    PredictiveGovernor, ProfileGovernor, RegionChoice, WorkloadProfile,
};
use mcdvfs_core::{GovernedRun, InefficiencyBudget};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::{FreqSetting, FrequencyGrid, MemFreq};
use mcdvfs_workloads::{Benchmark, SampleTrace};
use std::sync::Arc;

fn setup(b: Benchmark) -> (Arc<CharacterizationGrid>, SampleTrace) {
    let trace = b.trace();
    let data = Arc::new(CharacterizationGrid::characterize(
        &System::galaxy_nexus_class(),
        &trace,
        FrequencyGrid::coarse(),
    ));
    (data, trace)
}

fn budget(v: f64) -> InefficiencyBudget {
    InefficiencyBudget::bounded(v).unwrap()
}

#[test]
fn every_governor_produces_a_consistent_report() {
    let (data, trace) = setup(Benchmark::Gobmk);
    let grid = data.grid();
    let system = System::galaxy_nexus_class();
    let latency = system.latency_model().clone();
    let b = budget(1.3);

    let latency2 = latency.clone();
    let profile = WorkloadProfile::from_characterization(&data, b, 0.05).unwrap();
    let mut governors: Vec<Box<dyn Governor>> = vec![
        Box::new(FixedGovernor::new(FreqSetting::from_mhz(500, 400))),
        Box::new(PerformanceGovernor::new(grid)),
        Box::new(PowersaveGovernor::new(grid)),
        Box::new(OndemandGovernor::new(grid, 0.6, move |mhz| {
            latency.effective_bandwidth(MemFreq::from_mhz(mhz))
        })),
        Box::new(ConservativeGovernor::new(grid, 0.6, move |mhz| {
            latency2.effective_bandwidth(MemFreq::from_mhz(mhz))
        })),
        Box::new(ProfileGovernor::new(profile)),
        Box::new(CoScaleGovernor::new(Arc::clone(&data), b)),
        Box::new(CoScaleGovernor::new(Arc::clone(&data), b).starting_from_previous()),
        Box::new(OracleOptimalGovernor::new(Arc::clone(&data), b)),
        Box::new(OracleClusterGovernor::new(Arc::clone(&data), b, 0.05).unwrap()),
        Box::new(
            OracleClusterGovernor::with_choice(
                Arc::clone(&data),
                b,
                0.05,
                RegionChoice::LowestEnergy,
            )
            .unwrap(),
        ),
        Box::new(PredictiveGovernor::new(Arc::clone(&data), b)),
    ];

    let runner = GovernedRun::with_paper_overheads();
    for governor in &mut governors {
        let report = runner.execute(&data, &trace, governor.as_mut());
        assert_eq!(
            report.sample_settings.len(),
            trace.len(),
            "{}",
            report.governor
        );
        assert!(report.work_time.value() > 0.0);
        assert!(report.work_energy.value() > 0.0);
        assert!(report.total_time() >= report.work_time);
        assert!(report.total_energy() >= report.work_energy);
        assert!(report.total_inefficiency() >= 1.0 - 1e-9);
        for &s in &report.sample_settings {
            assert!(grid.contains(s), "{} chose off-grid {s}", report.governor);
        }
    }
}

#[test]
fn oracle_governors_meet_their_budget_while_baselines_blow_it() {
    let (data, trace) = setup(Benchmark::Milc);
    let b = budget(1.2);
    let runner = GovernedRun::without_overheads();
    let bound = 1.2 * (1.0 + InefficiencyBudget::NOISE_TOLERANCE) + 1e-9;

    let mut oracle = OracleOptimalGovernor::new(Arc::clone(&data), b);
    let oracle_report = runner.execute(&data, &trace, &mut oracle);
    assert!(oracle_report.work_inefficiency() <= bound);

    let mut cluster = OracleClusterGovernor::new(Arc::clone(&data), b, 0.05).unwrap();
    let cluster_report = runner.execute(&data, &trace, &mut cluster);
    assert!(cluster_report.work_inefficiency() <= bound);

    let mut performance = PerformanceGovernor::new(data.grid());
    let perf_report = runner.execute(&data, &trace, &mut performance);
    assert!(
        perf_report.work_inefficiency() > bound,
        "the performance governor has no energy constraint: {}",
        perf_report.work_inefficiency()
    );
}

#[test]
fn powersave_demonstrates_slow_is_not_efficient() {
    let (data, trace) = setup(Benchmark::Gobmk);
    let runner = GovernedRun::without_overheads();
    let mut powersave = PowersaveGovernor::new(data.grid());
    let report = runner.execute(&data, &trace, &mut powersave);
    assert!(
        report.work_inefficiency() > 1.25,
        "the slowest settings waste energy: {}",
        report.work_inefficiency()
    );
}

#[test]
fn warm_coscale_charges_less_tuning_than_cold() {
    let (data, trace) = setup(Benchmark::Lbm);
    let b = budget(1.2);
    let runner = GovernedRun::with_paper_overheads();
    let mut cold = CoScaleGovernor::new(Arc::clone(&data), b);
    let mut warm = CoScaleGovernor::new(Arc::clone(&data), b).starting_from_previous();
    let cold_report = runner.execute(&data, &trace, &mut cold);
    let warm_report = runner.execute(&data, &trace, &mut warm);
    assert!(
        warm_report.tuning_time < cold_report.tuning_time,
        "warm start {} vs cold {} tuning seconds",
        warm_report.tuning_time.value(),
        cold_report.tuning_time.value()
    );
}

#[test]
fn predictive_governor_searches_far_less_than_the_oracle_tracker() {
    let (data, trace) = setup(Benchmark::Lbm);
    let b = budget(1.3);
    let runner = GovernedRun::with_paper_overheads();
    let mut oracle = OracleOptimalGovernor::new(Arc::clone(&data), b);
    let tracked = runner.execute(&data, &trace, &mut oracle);
    let mut predictive = PredictiveGovernor::new(Arc::clone(&data), b);
    let predicted = runner.execute(&data, &trace, &mut predictive);
    assert!(predicted.searches * 2 < tracked.searches);
    // And its quality stays close: within 5% of the oracle's time.
    assert!(predicted.total_time().value() < tracked.total_time().value() * 1.05);
}

#[test]
fn efficient_region_choice_saves_energy_within_threshold() {
    let (data, trace) = setup(Benchmark::Gcc);
    let b = budget(1.3);
    let runner = GovernedRun::without_overheads();
    let mut fast = OracleClusterGovernor::new(Arc::clone(&data), b, 0.05).unwrap();
    let fast_report = runner.execute(&data, &trace, &mut fast);
    let mut efficient =
        OracleClusterGovernor::with_choice(Arc::clone(&data), b, 0.05, RegionChoice::LowestEnergy)
            .unwrap();
    let efficient_report = runner.execute(&data, &trace, &mut efficient);
    assert!(efficient_report.work_energy <= fast_report.work_energy);
    // The bounded loss: the efficient choice is within the 5% threshold of
    // the performance choice.
    let loss = efficient_report.work_time / fast_report.work_time - 1.0;
    assert!(loss <= 0.05 + 1e-9, "loss {loss}");
}
