//! Integration-test support crate for the `mcdvfs` workspace.
